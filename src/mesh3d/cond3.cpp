#include "mesh3d/cond3.hpp"

#include <stdexcept>
#include <vector>

namespace meshroute::d3 {
namespace {

/// Sign of each axis step from s toward d (+1, -1, or 0 when aligned).
std::array<Dist, 3> axis_signs(Coord3 s, Coord3 d) {
  std::array<Dist, 3> sign{};
  for (int axis = 0; axis < 3; ++axis) {
    const Dist delta = d.get(axis) - s.get(axis);
    sign[static_cast<std::size_t>(axis)] = delta > 0 ? 1 : delta < 0 ? -1 : 0;
  }
  return sign;
}

/// Direction toward the destination along `axis` (positive when aligned —
/// the degenerate offset is 0, which every safety level satisfies).
Direction3 toward(int axis, Dist sign) {
  const Direction3 pos = positive_direction(axis);
  return sign < 0 ? opposite(pos) : pos;
}

void check_problem(const RoutingProblem3& p) {
  if (p.mesh == nullptr || p.obstacles == nullptr || p.safety == nullptr) {
    throw std::invalid_argument("RoutingProblem3: null field");
  }
}

}  // namespace

bool monotone_path_exists3(const Mesh3D& mesh, const Grid3<bool>& blocked, Coord3 s, Coord3 d) {
  if (!mesh.in_bounds(s) || !mesh.in_bounds(d)) return false;
  if (blocked[s] || blocked[d]) return false;
  const auto sign = axis_signs(s, d);
  const Dist ex = sign[0] == 0 ? 0 : (d.x - s.x) * sign[0];
  const Dist ey = sign[1] == 0 ? 0 : (d.y - s.y) * sign[1];
  const Dist ez = sign[2] == 0 ? 0 : (d.z - s.z) * sign[2];

  Grid3<bool> reach(ex + 1, ey + 1, ez + 1, false);
  const auto mesh_at = [&](Dist x, Dist y, Dist z) {
    return Coord3{s.x + sign[0] * x, s.y + sign[1] * y, s.z + sign[2] * z};
  };
  for (Dist z = 0; z <= ez; ++z) {
    for (Dist y = 0; y <= ey; ++y) {
      for (Dist x = 0; x <= ex; ++x) {
        if (blocked[mesh_at(x, y, z)]) continue;
        if (x == 0 && y == 0 && z == 0) {
          reach[{x, y, z}] = true;
        } else {
          reach[{x, y, z}] = (x > 0 && reach[{x - 1, y, z}]) ||
                             (y > 0 && reach[{x, y - 1, z}]) ||
                             (z > 0 && reach[{x, y, z - 1}]);
        }
      }
    }
  }
  return reach[{ex, ey, ez}];
}

void monotone_reachability3(const Mesh3D& mesh, const Grid3<bool>& blocked, Coord3 source,
                            Grid3<bool>& out) {
  if (out.nx() != mesh.nx() || out.ny() != mesh.ny() || out.nz() != mesh.nz()) {
    out = Grid3<bool>(mesh.nx(), mesh.ny(), mesh.nz(), false);
  } else {
    out.fill(false);
  }
  if (!mesh.in_bounds(source) || blocked[source]) return;

  const auto w = static_cast<std::size_t>(mesh.nx());
  const auto h = static_cast<std::size_t>(mesh.ny());
  const auto depth = static_cast<std::size_t>(mesh.nz());
  const auto sx = static_cast<std::size_t>(source.x);
  const auto sy = static_cast<std::size_t>(source.y);
  const auto sz = static_cast<std::size_t>(source.z);
  const std::uint8_t* blk = blocked.data().data();
  std::uint8_t* reach = out.data().data();

  // One row of an octant pass. `py` is the adjacent row one step toward the
  // source row within the same layer; `pz` the same row of the adjacent
  // layer one step toward the source layer. Either may be nullptr on the
  // source plane of its axis; the very first call (source row of the source
  // layer) sees both null and relies on the pre-seeded center cell.
  const auto sweep_row = [&](std::uint8_t* r, const std::uint8_t* b, const std::uint8_t* py,
                             const std::uint8_t* pz) {
    const auto from_prev = [&](std::size_t x) {
      return (py != nullptr && py[x]) || (pz != nullptr && pz[x]);
    };
    if (py != nullptr || pz != nullptr) r[sx] = !b[sx] && from_prev(sx);
    for (std::size_t x = sx + 1; x < w; ++x) {
      r[x] = !b[x] && (r[x - 1] || from_prev(x));
    }
    for (std::size_t x = sx; x-- > 0;) {
      r[x] = !b[x] && (r[x + 1] || from_prev(x));
    }
  };
  // One layer: rows fan out from the source row exactly as the 2-D oracle's
  // quadrant sweeps fan out from the source row of the mesh.
  const auto sweep_layer = [&](std::uint8_t* layer, const std::uint8_t* b,
                               const std::uint8_t* prev_layer) {
    const auto row = [&](const std::uint8_t* base, std::size_t y) {
      return base == nullptr ? nullptr : base + y * w;
    };
    sweep_row(layer + sy * w, b + sy * w, nullptr, row(prev_layer, sy));
    for (std::size_t y = sy + 1; y < h; ++y) {
      sweep_row(layer + y * w, b + y * w, layer + (y - 1) * w, row(prev_layer, y));
    }
    for (std::size_t y = sy; y-- > 0;) {
      sweep_row(layer + y * w, b + y * w, layer + (y + 1) * w, row(prev_layer, y));
    }
  };

  const std::size_t plane = w * h;
  reach[(sz * h + sy) * w + sx] = 1;
  sweep_layer(reach + sz * plane, blk + sz * plane, nullptr);
  for (std::size_t z = sz + 1; z < depth; ++z) {
    sweep_layer(reach + z * plane, blk + z * plane, reach + (z - 1) * plane);
  }
  for (std::size_t z = sz; z-- > 0;) {
    sweep_layer(reach + z * plane, blk + z * plane, reach + (z + 1) * plane);
  }
}

Grid3<bool> monotone_reachability3(const Mesh3D& mesh, const Grid3<bool>& blocked,
                                   Coord3 source) {
  Grid3<bool> out(mesh.nx(), mesh.ny(), mesh.nz(), false);
  monotone_reachability3(mesh, blocked, source, out);
  return out;
}

bool safe_with_respect_to3(const RoutingProblem3& p, Coord3 node, Coord3 target) {
  check_problem(p);
  const Mesh3D& mesh = *p.mesh;
  if (!mesh.in_bounds(node) || !mesh.in_bounds(target)) return false;
  if ((*p.obstacles)[node] || (*p.obstacles)[target]) return false;
  const auto sign = axis_signs(node, target);
  for (int axis = 0; axis < 3; ++axis) {
    const Dist offset = (target.get(axis) - node.get(axis)) * sign[static_cast<std::size_t>(axis)];
    if (offset > (*p.safety)[node].get(toward(axis, sign[static_cast<std::size_t>(axis)]))) {
      return false;
    }
  }
  return true;
}

bool source_safe3(const RoutingProblem3& p) {
  return safe_with_respect_to3(p, p.source, p.dest);
}

Decision3 extension1_3d(const RoutingProblem3& p, Coord3* via) {
  check_problem(p);
  if (source_safe3(p)) {
    if (via != nullptr) *via = p.source;
    return Decision3::Minimal;
  }
  const auto sign = axis_signs(p.source, p.dest);
  bool preferred[6] = {false, false, false, false, false, false};
  for (int axis = 0; axis < 3; ++axis) {
    if (sign[static_cast<std::size_t>(axis)] != 0) {
      preferred[static_cast<std::size_t>(toward(axis, sign[static_cast<std::size_t>(axis)]))] =
          true;
    }
  }
  for (const Direction3 d : kAllDirections3) {
    if (!preferred[static_cast<std::size_t>(d)]) continue;
    const Coord3 v = neighbor(p.source, d);
    if (p.mesh->in_bounds(v) && safe_with_respect_to3(p, v, p.dest)) {
      if (via != nullptr) *via = v;
      return Decision3::Minimal;
    }
  }
  for (const Direction3 d : kAllDirections3) {
    if (preferred[static_cast<std::size_t>(d)]) continue;
    const Coord3 v = neighbor(p.source, d);
    if (p.mesh->in_bounds(v) && safe_with_respect_to3(p, v, p.dest)) {
      if (via != nullptr) *via = v;
      return Decision3::SubMinimal;
    }
  }
  return Decision3::Unknown;
}

std::optional<bool> cond3_safe_implies_reachable(const RoutingProblem3& p) {
  if (!source_safe3(p)) return std::nullopt;
  return monotone_path_exists3(*p.mesh, *p.obstacles, p.source, p.dest);
}

}  // namespace meshroute::d3
