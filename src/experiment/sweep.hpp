// The parallel, deterministic sweep engine behind every figure/ablation
// bench: the paper's Monte Carlo grid (fault-count k x trial) fanned across
// a fixed-size thread pool.
//
// Determinism contract: results are bit-identical for ANY --threads AND
// --batch value. --batch only moves trial construction into SoA prebuilds
// that make_trial consumes on exact (config, rng-state) matches, so the
// trials themselves are bit-identical (tests/test_batch.cpp asserts it).
// Two mechanisms guarantee thread independence (verified by
// tests/test_experiment.cpp):
//
//   1. Seed-splitting, never a shared stream. Each (point, trial) cell gets
//      an independent Rng seeded by hashing (base_seed, k, n, trial_index)
//      through SplitMix64 (`cell_seed`), so a cell's draws do not depend on
//      which thread runs it or in what order.
//   2. Fixed-order reduction. Cells accumulate into private
//      analysis::Accumulator rows; after the pool drains, per-point
//      statistics merge in trial order regardless of completion order.
//
// Usage (see bench/fig09_extension1.cpp for the full pattern):
//
//   const auto cfg = experiment::SweepConfig::parse(argc, argv);
//   experiment::SweepRunner runner(cfg, {"safe", "ext1", "existence"});
//   const auto result = runner.run([&](const experiment::SweepCell& cell, Rng& rng,
//                                      experiment::TrialWorkspace& ws,
//                                      experiment::TrialCounters& out) {
//     const auto& trial =
//         experiment::make_trial({.n = cell.n(), .faults = cell.faults()}, rng, ws);
//     for (int s = 0; s < cfg.dests; ++s) out.count(0, ...);
//   });
//
// Each worker thread owns one TrialWorkspace for the whole run, so
// steady-state trials reuse every grid/scratch buffer instead of
// reallocating them per cell (results are unaffected — the workspace path
// is bit-identical to the allocating one).
//   experiment::Table t = result.table("faults", {"safe", "ext1", "existence"});
//   experiment::write_sweep_json(cfg, {{"fig09a", &t}}, result.wall_ms());
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/stats.hpp"
#include "common/coord.hpp"
#include "common/rng.hpp"
#include "experiment/table.hpp"

namespace meshroute::obs {
class TraceSink;
}  // namespace meshroute::obs

namespace meshroute::core::simd {
enum class Tier : std::uint8_t;
}  // namespace meshroute::core::simd

namespace meshroute::experiment {

struct TrialWorkspace;

/// Shared bench configuration, parsed from the common flag set:
///   --trials=N --dests=N --n=N --seed=S --threads=T --batch=B
///   --json=FILE|- --metrics=FILE|- --quick
/// Unknown flags are rejected with a usage message (parse() exits; try_parse
/// reports the error for tests).
struct SweepConfig {
  Dist n = 200;                    ///< mesh side
  int trials = 60;                 ///< fault configurations per sweep point
  int dests = 40;                  ///< destinations per configuration
  std::uint64_t seed = 0x5eed2002; ///< base seed (hex accepted on the flag)
  int threads = 0;                 ///< worker threads; 0 = hardware concurrency
  int batch = 0;                   ///< cells per worker claim; >1 prebuilds their
                                   ///< trials via the SoA batch kernels; 0 = auto
                                   ///< (default_batch_for(threads, tier))
  std::string json_path;           ///< --json target; "" = off, "-" = stdout
  std::string metrics_path;        ///< --metrics target; "" = off, "-" = stdout
  bool quick = false;              ///< --quick given (trials=8, dests=10)
  std::vector<std::size_t> fault_counts;  ///< default k = 10..200 step 10

  SweepConfig() {
    for (std::size_t k = 10; k <= 200; k += 10) fault_counts.push_back(k);
  }

  /// Parse or die: on a bad/unknown flag prints the error and usage to
  /// stderr and exits with status 2.
  [[nodiscard]] static SweepConfig parse(int argc, char** argv);

  /// Parse, reporting failure instead of exiting (for tests).
  [[nodiscard]] static std::optional<SweepConfig> try_parse(int argc, char** argv,
                                                            std::string* error);

  /// The flag synopsis printed on parse errors.
  [[nodiscard]] static std::string usage();

  /// Worker-thread count after resolving 0 to the hardware concurrency.
  [[nodiscard]] int resolved_threads() const;

  /// Worker-claim size after resolving 0 (auto) through
  /// default_batch_for(resolved_threads(), active SIMD tier). Explicit
  /// --batch values pass through untouched.
  [[nodiscard]] int resolved_batch() const;

  /// "n=200, 60 trials x 40 destinations" — the benches' title suffix.
  [[nodiscard]] std::string setup_string() const;
};

/// One sweep point: the x value recorded in tables plus the per-point trial
/// parameters. `n == 0` / `trials == 0` inherit the config defaults.
struct SweepPoint {
  double x = 0;
  std::size_t faults = 0;
  Dist n = 0;
  int trials = 0;
};

/// Identity of one grid cell, handed to the trial functor.
struct SweepCell {
  SweepPoint point;
  int trial = 0;
  std::size_t point_index = 0;  ///< position of `point` in the sweep's grid

  [[nodiscard]] Dist n() const noexcept { return point.n; }
  [[nodiscard]] std::size_t faults() const noexcept { return point.faults; }
  [[nodiscard]] double x() const noexcept { return point.x; }

  /// Logical trace stream for this cell's events (obs::TraceEvent::track):
  /// unique per (point, trial), never 0 — track 0 stays the global stream.
  [[nodiscard]] std::uint64_t track_id() const noexcept {
    return ((static_cast<std::uint64_t>(point_index) + 1) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(trial));
  }
};

/// The independent seed for a grid cell (SplitMix64 hash chain over base
/// seed, fault count, mesh side, and trial index).
[[nodiscard]] constexpr std::uint64_t cell_seed(std::uint64_t base_seed, std::size_t faults,
                                                Dist n, int trial) noexcept {
  std::uint64_t h = splitmix64(base_seed);
  h = seed_combine(h, static_cast<std::uint64_t>(faults));
  h = seed_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(n)));
  h = seed_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(trial)));
  return h;
}

/// One trial's row of named counters. Columns are fixed by the SweepRunner;
/// a column may stay empty in a given trial (e.g. "no blocks were built"),
/// in which case it simply contributes nothing to that point's statistic.
class TrialCounters {
 public:
  explicit TrialCounters(std::size_t columns) : cells_(columns) {}

  /// Accumulate a measurement into a mean-of-values column.
  void observe(std::size_t column, double value) { cells_.at(column).add(value); }

  /// Accumulate a success/failure into a proportion column.
  void count(std::size_t column, bool success) {
    cells_.at(column).add(success ? 1.0 : 0.0);
  }

  [[nodiscard]] const analysis::Accumulator& cell(std::size_t column) const {
    return cells_.at(column);
  }
  [[nodiscard]] std::size_t columns() const noexcept { return cells_.size(); }

 private:
  std::vector<analysis::Accumulator> cells_;
};

/// Reduced sweep output: per-(point, column) statistics plus wall time.
class SweepResult {
 public:
  SweepResult(std::vector<std::string> columns, std::vector<SweepPoint> points,
              std::vector<std::vector<analysis::Accumulator>> stats, double wall_ms);

  [[nodiscard]] const std::vector<SweepPoint>& points() const noexcept { return points_; }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept { return columns_; }
  [[nodiscard]] double wall_ms() const noexcept { return wall_ms_; }

  /// Mean of a column at a point (0.0 when the column never accumulated).
  [[nodiscard]] double mean(std::size_t point, std::string_view column) const;
  /// Mean, or `fallback` when the column never accumulated at this point.
  [[nodiscard]] double mean_or(std::size_t point, std::string_view column,
                               double fallback) const;
  /// ~95% confidence half-width of the mean.
  [[nodiscard]] double ci95(std::size_t point, std::string_view column) const;
  /// Number of samples the column accumulated at this point.
  [[nodiscard]] std::int64_t count(std::size_t point, std::string_view column) const;

  /// Project into a printable Table: first column `x_name` (the points' x
  /// values), then the selected counter columns. `headers` renames them
  /// (empty = keep internal names; otherwise must match `selected`'s size).
  [[nodiscard]] Table table(const std::string& x_name,
                            const std::vector<std::string>& selected,
                            const std::vector<std::string>& headers = {}) const;

 private:
  [[nodiscard]] std::size_t column_index(std::string_view column) const;

  std::vector<std::string> columns_;
  std::vector<SweepPoint> points_;
  std::vector<std::vector<analysis::Accumulator>> stats_;  // [point][column]
  double wall_ms_ = 0;
};

/// Fans the (point, trial) grid across a fixed-size thread pool and reduces
/// per point in fixed trial order. The trial functor must be thread-safe
/// with respect to its captures (treat captured state as read-only; all
/// mutation goes through the per-cell Rng and TrialCounters).
class SweepRunner {
 public:
  using TrialFn = std::function<void(const SweepCell&, Rng&, TrialWorkspace&, TrialCounters&)>;

  SweepRunner(SweepConfig config, std::vector<std::string> columns);

  /// Run over the default grid: one point per config.fault_counts entry.
  [[nodiscard]] SweepResult run(const TrialFn& fn) const;

  /// Run over a custom point list (mesh-size sweeps, injection-rate sweeps,
  /// reduced k grids, ...).
  [[nodiscard]] SweepResult run(std::vector<SweepPoint> points, const TrialFn& fn) const;

  /// Collect trace events from every worker thread into `sink` (null = off,
  /// the default). The sink must outlive run(). With MESHROUTE_TRACE
  /// compiled out this is accepted but no events arrive.
  void set_trace_sink(obs::TraceSink* sink) noexcept { trace_sink_ = sink; }

  [[nodiscard]] const SweepConfig& config() const noexcept { return config_; }

 private:
  SweepConfig config_;
  std::vector<std::string> columns_;
  obs::TraceSink* trace_sink_ = nullptr;
};

/// Core-scaled default worker-claim size for --batch=0 (auto). The SoA
/// prebuild path is memory-bound (DESIGN §12): with few threads the shared
/// LLC absorbs the lane arenas and batching buys little, while wide runs
/// amortize the per-claim sweep setup across more lanes before the memory
/// system saturates. Hence 1 (plain claims) for <= 2 threads or the Scalar
/// tier (no SIMD sweeps to amortize), else ~8 lanes per 4 cores, capped at
/// the kernels' 64-lane maximum. The crossover behind these constants is
/// measured by microbench's batch-sweep and recorded in BENCH_core.json
/// meta (`batch_sweep`).
[[nodiscard]] int default_batch_for(int threads, core::simd::Tier tier) noexcept;

/// Points with x = k for a plain fault-count sweep.
[[nodiscard]] std::vector<SweepPoint> fault_count_points(const std::vector<std::size_t>& ks);

/// One (tag, table) pair of a bench's structured output.
struct TaggedTable {
  std::string tag;
  const Table* table = nullptr;
};

/// Serialize a bench run as a single-line JSON array with one object per
/// table, each `{tag, n, trials, dests, seed, points:[{column: value, ...}],
/// wall_ms}`. Every field except `wall_ms` is deterministic for a given
/// config — byte-identical across `--threads` values.
void write_sweep_json(std::ostream& os, const SweepConfig& config,
                      const std::vector<TaggedTable>& tables, double wall_ms);

/// Honor `config.json_path` (no-op when empty, stdout when "-", else the
/// named file, truncating) AND `config.metrics_path` (same semantics: a
/// flat obs::Registry snapshot via obs::write_metrics_json). Returns true
/// when either output was written.
bool write_sweep_json(const SweepConfig& config, const std::vector<TaggedTable>& tables,
                      double wall_ms);

}  // namespace meshroute::experiment
