#include "experiment/trial.hpp"

#include <chrono>
#include <numeric>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cond/wang.hpp"
#include "experiment/workspace.hpp"
#include "obs/metrics.hpp"

namespace meshroute::experiment {

void Trial::reachability(Grid<bool>& out) const {
  cond::monotone_reachability(mesh, faulty_mask, source, out);
}

Grid<bool> Trial::reachability() const {
  return cond::monotone_reachability(mesh, faulty_mask, source);
}

Trial make_trial(const TrialConfig& config, Rng& rng) {
  TrialWorkspace workspace;
  return std::move(make_trial(config, rng, workspace));
}

Trial& make_trial(const TrialConfig& config, Rng& rng, TrialWorkspace& workspace) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto charge_build_time = [&] {
    workspace.build_us +=
        std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0).count();
  };
  // Cold vs warm workspace builds distinguish per-thread setup cost from
  // steady-state reuse in --metrics output.
  static obs::Counter& cold_ctr =
      obs::Registry::global().counter("experiment.trials.workspace_cold");
  static obs::Counter& trials_ctr = obs::Registry::global().counter("experiment.trials.built");

  // Consume the front prebuilt trial on an exact (config, rng state) match.
  // The match implies a direct build would reproduce the slot bit for bit
  // (the builders draw nothing beyond the fault samples), so this is pure
  // timing: the model sweeps already ran inside a SoA batch.
  if (workspace.prebuilt_head < workspace.prebuilt_count) {
    PrebuiltTrial& pb = workspace.prebuilt[workspace.prebuilt_head];
    if (pb.trial && pb.config == config && pb.rng_before == rng.engine()) {
      ++workspace.prebuilt_head;
      rng.engine() = pb.rng_after;
      trials_ctr.add(1);
      if (!workspace.trial) {
        cold_ctr.add(1);
        workspace.trial.emplace(std::move(*pb.trial));
        pb.trial.reset();
      } else {
        std::swap(*workspace.trial, *pb.trial);  // recycle both slots' buffers
      }
      charge_build_time();
      return *workspace.trial;
    }
  }

  const Mesh2D mesh = Mesh2D::square(config.n);
  const Coord source = config.source.value_or(mesh.center());
  if (!mesh.in_bounds(source)) throw std::invalid_argument("make_trial: source outside mesh");

  trials_ctr.add(1);
  if (!workspace.trial) {
    cold_ctr.add(1);
    workspace.trial.emplace(Trial{mesh, source, fault::FaultSet{}, fault::BlockSet{},
                                  fault::MccSet{}, Grid<bool>{}, Grid<bool>{}, Grid<bool>{},
                                  info::SafetyGrid{}, info::SafetyGrid{}});
  }
  Trial& trial = *workspace.trial;
  trial.mesh = mesh;
  trial.source = source;

  constexpr int kMaxRerolls = 1000;
  for (int attempt = 0; attempt < kMaxRerolls; ++attempt) {
    // The source itself is never faulty; block membership is re-checked
    // after model construction since blocks can engulf healthy nodes. The
    // single-excluded-node overload draws the same sequence as the old
    // predicate form but costs O(k), not O(nodes).
    fault::uniform_random_faults(mesh, config.faults, rng, source, trial.faults,
                                 workspace.sample);
    fault::build_faulty_blocks(mesh, trial.faults, trial.blocks, workspace.block);
    if (trial.blocks.is_block_node(source)) continue;
    fault::build_mcc(mesh, trial.faults, fault::MccKind::TypeOne, trial.mcc1, workspace.mcc);
    if (trial.mcc1.is_mcc_node(source)) continue;

    trial.faulty_mask = trial.faults.mask();
    info::obstacle_mask(mesh, trial.blocks, trial.fb_mask);
    info::obstacle_mask(mesh, trial.mcc1, trial.mcc_mask);
#if defined(MESHROUTE_FORCE_SCALAR)
    info::compute_safety_levels(mesh, trial.fb_mask, trial.fb_safety);
    info::compute_safety_levels(mesh, trial.mcc_mask, trial.mcc_safety);
#else
    // The builders leave their final obstacle planes in the scratch
    // (bad_plane = union of block rects, labeled_plane = MCC status != 0),
    // so the safety sweeps skip the byte-mask pack.
    info::compute_safety_levels(mesh, workspace.block.bad_plane, trial.fb_safety);
    info::compute_safety_levels(mesh, workspace.mcc.labeled_plane, trial.mcc_safety);
#endif
    charge_build_time();
    return trial;
  }
  throw std::runtime_error("make_trial: could not place source outside all blocks");
}

void prebuild_trials(std::span<const TrialConfig> configs, std::span<Rng> rngs,
                     TrialWorkspace& workspace) {
  if (configs.size() != rngs.size()) {
    throw std::invalid_argument("prebuild_trials: configs/rngs size mismatch");
  }
  workspace.prebuilt_head = 0;
  workspace.prebuilt_count = 0;
  if (configs.empty()) return;
  for (const TrialConfig& c : configs) {
    if (c.n != configs[0].n) {
      throw std::invalid_argument("prebuild_trials: lanes must share the mesh side");
    }
  }
  const std::size_t lanes = configs.size();
  if (workspace.prebuilt.size() < lanes) workspace.prebuilt.resize(lanes);

#if defined(MESHROUTE_FORCE_SCALAR)
  // No batch kernels exist on the scalar build; run the per-lane path, which
  // is by definition what the batch path below must reproduce.
  for (std::size_t l = 0; l < lanes; ++l) {
    PrebuiltTrial& pb = workspace.prebuilt[l];
    pb.config = configs[l];
    pb.rng_before = rngs[l].engine();
    Trial& t = make_trial(configs[l], rngs[l], workspace);
    pb.rng_after = rngs[l].engine();
    if (!pb.trial) {
      pb.trial.emplace(t);  // copy: workspace.trial must stay intact for lane l+1
    } else {
      std::swap(*pb.trial, t);
    }
  }
#else
  const Mesh2D mesh = Mesh2D::square(configs[0].n);
  for (std::size_t l = 0; l < lanes; ++l) {
    PrebuiltTrial& pb = workspace.prebuilt[l];
    pb.config = configs[l];
    pb.rng_before = rngs[l].engine();
    const Coord source = configs[l].source.value_or(mesh.center());
    if (!mesh.in_bounds(source)) throw std::invalid_argument("make_trial: source outside mesh");
    if (!pb.trial) {
      pb.trial.emplace(Trial{mesh, source, fault::FaultSet{}, fault::BlockSet{},
                             fault::MccSet{}, Grid<bool>{}, Grid<bool>{}, Grid<bool>{},
                             info::SafetyGrid{}, info::SafetyGrid{}});
    } else {
      pb.trial->mesh = mesh;
      pb.trial->source = source;
    }
  }

  // Lockstep reroll rounds: every still-pending lane draws its faults (from
  // its own engine — lane order inside a round is immaterial), then all
  // pending lanes' models are built by the SoA batch sweeps. A lane whose
  // source lands inside a block/MCC goes around again, exactly like one
  // make_trial attempt; its round count equals the attempt count the
  // single-trial path would have used.
  std::vector<int> pending(lanes);
  std::iota(pending.begin(), pending.end(), 0);
  std::vector<int> next_pending;
  std::vector<int> mcc_lanes;
  std::vector<const fault::FaultSet*> fault_ptrs;
  std::vector<fault::BlockSet*> block_ptrs;
  std::vector<fault::MccSet*> mcc_ptrs;
  const auto trial_of = [&](int l) -> Trial& {
    return *workspace.prebuilt[static_cast<std::size_t>(l)].trial;
  };

  constexpr int kMaxRerolls = 1000;  // same reroll budget as make_trial
  for (int attempt = 0; attempt < kMaxRerolls && !pending.empty(); ++attempt) {
    for (const int l : pending) {
      Trial& t = trial_of(l);
      fault::uniform_random_faults(mesh, configs[static_cast<std::size_t>(l)].faults,
                                   rngs[static_cast<std::size_t>(l)], t.source, t.faults,
                                   workspace.sample);
    }
    next_pending.clear();
    mcc_lanes.clear();
    fault_ptrs.clear();
    block_ptrs.clear();
    for (const int l : pending) {
      fault_ptrs.push_back(&trial_of(l).faults);
      block_ptrs.push_back(&trial_of(l).blocks);
    }
    // The per-lane hook runs while the lane's final obstacle plane is still
    // in scratch.bad_plane, so the fb mask and safety levels come straight
    // off it — the same shortcut make_trial takes.
    fault::build_faulty_blocks_batch(mesh, fault_ptrs, block_ptrs, workspace.block,
                                     [&](int i) {
      const int l = pending[static_cast<std::size_t>(i)];
      Trial& t = trial_of(l);
      if (t.blocks.is_block_node(t.source)) {
        next_pending.push_back(l);
        return;
      }
      info::obstacle_mask(mesh, t.blocks, t.fb_mask);
      info::compute_safety_levels(mesh, workspace.block.bad_plane, t.fb_safety);
      mcc_lanes.push_back(l);
    });

    if (!mcc_lanes.empty()) {
      fault_ptrs.clear();
      mcc_ptrs.clear();
      for (const int l : mcc_lanes) {
        fault_ptrs.push_back(&trial_of(l).faults);
        mcc_ptrs.push_back(&trial_of(l).mcc1);
      }
      fault::build_mcc_batch(mesh, fault_ptrs, fault::MccKind::TypeOne, mcc_ptrs,
                             workspace.mcc, [&](int i) {
        const int l = mcc_lanes[static_cast<std::size_t>(i)];
        PrebuiltTrial& pb = workspace.prebuilt[static_cast<std::size_t>(l)];
        Trial& t = *pb.trial;
        if (t.mcc1.is_mcc_node(t.source)) {
          next_pending.push_back(l);
          return;
        }
        t.faulty_mask = t.faults.mask();
        info::obstacle_mask(mesh, t.mcc1, t.mcc_mask);
        info::compute_safety_levels(mesh, workspace.mcc.labeled_plane, t.mcc_safety);
        pb.rng_after = rngs[static_cast<std::size_t>(l)].engine();
      });
    }
    pending.swap(next_pending);
  }
  if (!pending.empty()) {
    throw std::runtime_error("make_trial: could not place source outside all blocks");
  }
#endif
  workspace.prebuilt_count = lanes;
}

Coord sample_quadrant1_dest(const Trial& trial, Rng& rng) {
  const Rect area = trial.quadrant1_area();
  if (!area.valid()) throw std::invalid_argument("sample_quadrant1_dest: empty quadrant");
  constexpr int kMaxRerolls = 100000;
  for (int attempt = 0; attempt < kMaxRerolls; ++attempt) {
    const Coord d{static_cast<Dist>(rng.uniform(area.xmin, area.xmax)),
                  static_cast<Dist>(rng.uniform(area.ymin, area.ymax))};
    if (!trial.fb_mask[d] && !trial.mcc_mask[d]) return d;
  }
  throw std::runtime_error("sample_quadrant1_dest: no block-free destination found");
}

}  // namespace meshroute::experiment
