#include "experiment/trial.hpp"

#include <stdexcept>

namespace meshroute::experiment {

Trial make_trial(const TrialConfig& config, Rng& rng) {
  const Mesh2D mesh = Mesh2D::square(config.n);
  const Coord source = config.source.value_or(mesh.center());
  if (!mesh.in_bounds(source)) throw std::invalid_argument("make_trial: source outside mesh");

  constexpr int kMaxRerolls = 1000;
  for (int attempt = 0; attempt < kMaxRerolls; ++attempt) {
    // The source itself is never faulty; block membership is re-checked
    // after model construction since blocks can engulf healthy nodes.
    auto faults = fault::uniform_random_faults(mesh, config.faults, rng,
                                               [&](Coord c) { return c == source; });
    auto blocks = fault::build_faulty_blocks(mesh, faults);
    if (blocks.is_block_node(source)) continue;
    auto mcc1 = fault::build_mcc(mesh, faults, fault::MccKind::TypeOne);
    if (mcc1.is_mcc_node(source)) continue;

    Grid<bool> faulty_mask = faults.mask();
    Grid<bool> fb_mask = info::obstacle_mask(mesh, blocks);
    Grid<bool> mcc_mask = info::obstacle_mask(mesh, mcc1);
    info::SafetyGrid fb_safety = info::compute_safety_levels(mesh, fb_mask);
    info::SafetyGrid mcc_safety = info::compute_safety_levels(mesh, mcc_mask);

    return Trial{mesh,
                 source,
                 std::move(faults),
                 std::move(blocks),
                 std::move(mcc1),
                 std::move(faulty_mask),
                 std::move(fb_mask),
                 std::move(mcc_mask),
                 std::move(fb_safety),
                 std::move(mcc_safety)};
  }
  throw std::runtime_error("make_trial: could not place source outside all blocks");
}

Coord sample_quadrant1_dest(const Trial& trial, Rng& rng) {
  const Rect area = trial.quadrant1_area();
  if (!area.valid()) throw std::invalid_argument("sample_quadrant1_dest: empty quadrant");
  constexpr int kMaxRerolls = 100000;
  for (int attempt = 0; attempt < kMaxRerolls; ++attempt) {
    const Coord d{static_cast<Dist>(rng.uniform(area.xmin, area.xmax)),
                  static_cast<Dist>(rng.uniform(area.ymin, area.ymax))};
    if (!trial.fb_mask[d] && !trial.mcc_mask[d]) return d;
  }
  throw std::runtime_error("sample_quadrant1_dest: no block-free destination found");
}

}  // namespace meshroute::experiment
