#include "experiment/trial.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "cond/wang.hpp"
#include "experiment/workspace.hpp"
#include "obs/metrics.hpp"

namespace meshroute::experiment {

void Trial::reachability(Grid<bool>& out) const {
  cond::monotone_reachability(mesh, faulty_mask, source, out);
}

Grid<bool> Trial::reachability() const {
  return cond::monotone_reachability(mesh, faulty_mask, source);
}

Trial make_trial(const TrialConfig& config, Rng& rng) {
  TrialWorkspace workspace;
  return std::move(make_trial(config, rng, workspace));
}

Trial& make_trial(const TrialConfig& config, Rng& rng, TrialWorkspace& workspace) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto charge_build_time = [&] {
    workspace.build_us +=
        std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0).count();
  };
  const Mesh2D mesh = Mesh2D::square(config.n);
  const Coord source = config.source.value_or(mesh.center());
  if (!mesh.in_bounds(source)) throw std::invalid_argument("make_trial: source outside mesh");

  // Cold vs warm workspace builds distinguish per-thread setup cost from
  // steady-state reuse in --metrics output.
  static obs::Counter& cold_ctr =
      obs::Registry::global().counter("experiment.trials.workspace_cold");
  static obs::Counter& trials_ctr = obs::Registry::global().counter("experiment.trials.built");
  trials_ctr.add(1);
  if (!workspace.trial) {
    cold_ctr.add(1);
    workspace.trial.emplace(Trial{mesh, source, fault::FaultSet{}, fault::BlockSet{},
                                  fault::MccSet{}, Grid<bool>{}, Grid<bool>{}, Grid<bool>{},
                                  info::SafetyGrid{}, info::SafetyGrid{}});
  }
  Trial& trial = *workspace.trial;
  trial.mesh = mesh;
  trial.source = source;

  constexpr int kMaxRerolls = 1000;
  for (int attempt = 0; attempt < kMaxRerolls; ++attempt) {
    // The source itself is never faulty; block membership is re-checked
    // after model construction since blocks can engulf healthy nodes.
    fault::uniform_random_faults(mesh, config.faults, rng,
                                 [&](Coord c) { return c == source; }, trial.faults,
                                 workspace.sample);
    fault::build_faulty_blocks(mesh, trial.faults, trial.blocks, workspace.block);
    if (trial.blocks.is_block_node(source)) continue;
    fault::build_mcc(mesh, trial.faults, fault::MccKind::TypeOne, trial.mcc1, workspace.mcc);
    if (trial.mcc1.is_mcc_node(source)) continue;

    trial.faulty_mask = trial.faults.mask();
    info::obstacle_mask(mesh, trial.blocks, trial.fb_mask);
    info::obstacle_mask(mesh, trial.mcc1, trial.mcc_mask);
#if defined(MESHROUTE_FORCE_SCALAR)
    info::compute_safety_levels(mesh, trial.fb_mask, trial.fb_safety);
    info::compute_safety_levels(mesh, trial.mcc_mask, trial.mcc_safety);
#else
    // The builders leave their final obstacle planes in the scratch
    // (bad_plane = union of block rects, labeled_plane = MCC status != 0),
    // so the safety sweeps skip the byte-mask pack.
    info::compute_safety_levels(mesh, workspace.block.bad_plane, trial.fb_safety);
    info::compute_safety_levels(mesh, workspace.mcc.labeled_plane, trial.mcc_safety);
#endif
    charge_build_time();
    return trial;
  }
  throw std::runtime_error("make_trial: could not place source outside all blocks");
}

Coord sample_quadrant1_dest(const Trial& trial, Rng& rng) {
  const Rect area = trial.quadrant1_area();
  if (!area.valid()) throw std::invalid_argument("sample_quadrant1_dest: empty quadrant");
  constexpr int kMaxRerolls = 100000;
  for (int attempt = 0; attempt < kMaxRerolls; ++attempt) {
    const Coord d{static_cast<Dist>(rng.uniform(area.xmin, area.xmax)),
                  static_cast<Dist>(rng.uniform(area.ymin, area.ymax))};
    if (!trial.fb_mask[d] && !trial.mcc_mask[d]) return d;
  }
  throw std::runtime_error("sample_quadrant1_dest: no block-free destination found");
}

}  // namespace meshroute::experiment
