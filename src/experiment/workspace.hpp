// Per-thread reusable buffers for the trial hot path. A SweepRunner worker
// owns one TrialWorkspace for its whole lifetime and hands it to every
// trial functor invocation; make_trial then rebuilds the workspace-owned
// Trial in place instead of heap-allocating ~10 whole-mesh grids per trial.
//
// Ownership rules:
//   - The Trial returned by make_trial(config, rng, workspace) lives inside
//     the workspace and is valid until the next make_trial call on it.
//   - The scratch members are implementation detail of the builders; callers
//     only construct the workspace and pass it around.
//   - `reach` is a caller-usable output buffer, intended for
//     Trial::reachability / cond::monotone_reachability so the per-trial
//     oracle pass also allocates nothing.
//
// Results are bit-identical to the allocating make_trial: the in-place
// builders draw the same RNG sequence and compute the same fixed points
// (the allocating entry points delegate to them).
#pragma once

#include <random>
#include <span>
#include <vector>

#include "experiment/trial.hpp"

namespace meshroute::experiment {

/// One trial built ahead of time by prebuild_trials, tagged with the exact
/// request it answers: the config plus the engine state the builder started
/// from. make_trial consumes a slot only when BOTH match its own arguments —
/// in which case building directly would reproduce the slot bit for bit, so
/// the batch path can change timing but never results.
struct PrebuiltTrial {
  TrialConfig config;
  std::mt19937_64 rng_before;  ///< engine state the build consumed from
  std::mt19937_64 rng_after;   ///< engine state after all fault draws
  std::optional<Trial> trial;  ///< the finished trial (slot storage is reused)
};

struct TrialWorkspace {
  std::optional<Trial> trial;      ///< rebuilt in place by make_trial
  fault::SampleScratch sample;
  fault::BlockScratch block;
  fault::MccScratch mcc;
  Grid<bool> reach;                ///< reachability-oracle output buffer
  /// Microseconds make_trial spent building this workspace's Trial since the
  /// caller last reset it. The sweep worker zeroes it before each trial
  /// functor call and splits the functor's wall time into
  /// sweep.build_us / sweep.route_us from it.
  double build_us = 0.0;
  /// Prebuilt-trial queue: slots [prebuilt_head, prebuilt_count) are
  /// unconsumed, in the cell order prebuild_trials received. Slots beyond
  /// the queue keep their storage for reuse by the next prebuild.
  std::vector<PrebuiltTrial> prebuilt;
  std::size_t prebuilt_head = 0;
  std::size_t prebuilt_count = 0;
};

/// Workspace overload of make_trial: rebuilds workspace.trial in place and
/// returns a reference to it (invalidated by the next call). Zero
/// allocations in steady state; bit-identical to the allocating overload.
/// When the front of workspace.prebuilt matches (config, rng state) exactly,
/// the prebuilt trial is consumed instead of rebuilding — see PrebuiltTrial.
Trial& make_trial(const TrialConfig& config, Rng& rng, TrialWorkspace& workspace);

/// Build one whole trial per lane ahead of time with the SoA batch kernels
/// (fault::build_faulty_blocks_batch / build_mcc_batch), filling
/// workspace.prebuilt in lane order. All configs must share the mesh side
/// (one BitGridBatch geometry); fault counts may differ per lane. Each
/// rngs[l] is advanced to its post-build state, exactly as make_trial would
/// have advanced it — per-lane rerolls (source swallowed by a block/MCC) are
/// replayed in lockstep rounds, so every lane's draw sequence is identical
/// to the single-trial path. Under MESHROUTE_FORCE_SCALAR the lanes are
/// built one at a time through make_trial itself (no batch kernels exist
/// there), which is the behavior the batch path must reproduce.
void prebuild_trials(std::span<const TrialConfig> configs, std::span<Rng> rngs,
                     TrialWorkspace& workspace);

}  // namespace meshroute::experiment
