// Per-thread reusable buffers for the trial hot path. A SweepRunner worker
// owns one TrialWorkspace for its whole lifetime and hands it to every
// trial functor invocation; make_trial then rebuilds the workspace-owned
// Trial in place instead of heap-allocating ~10 whole-mesh grids per trial.
//
// Ownership rules:
//   - The Trial returned by make_trial(config, rng, workspace) lives inside
//     the workspace and is valid until the next make_trial call on it.
//   - The scratch members are implementation detail of the builders; callers
//     only construct the workspace and pass it around.
//   - `reach` is a caller-usable output buffer, intended for
//     Trial::reachability / cond::monotone_reachability so the per-trial
//     oracle pass also allocates nothing.
//
// Results are bit-identical to the allocating make_trial: the in-place
// builders draw the same RNG sequence and compute the same fixed points
// (the allocating entry points delegate to them).
#pragma once

#include "experiment/trial.hpp"

namespace meshroute::experiment {

struct TrialWorkspace {
  std::optional<Trial> trial;      ///< rebuilt in place by make_trial
  fault::SampleScratch sample;
  fault::BlockScratch block;
  fault::MccScratch mcc;
  Grid<bool> reach;                ///< reachability-oracle output buffer
  /// Microseconds make_trial spent building this workspace's Trial since the
  /// caller last reset it. The sweep worker zeroes it before each trial
  /// functor call and splits the functor's wall time into
  /// sweep.build_us / sweep.route_us from it.
  double build_us = 0.0;
};

/// Workspace overload of make_trial: rebuilds workspace.trial in place and
/// returns a reference to it (invalidated by the next call). Zero
/// allocations in steady state; bit-identical to the allocating overload.
Trial& make_trial(const TrialConfig& config, Rng& rng, TrialWorkspace& workspace);

}  // namespace meshroute::experiment
