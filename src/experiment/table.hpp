// Fixed-width console tables for the figure-regeneration benches: one header
// row, one data row per sweep point, machine-greppable ("fig09,...") CSV echo
// optional.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace meshroute::experiment {

/// Accumulates rows of doubles under named columns and pretty-prints them.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Add one row; must match the column count.
  void add_row(const std::vector<double>& values);

  /// Render: aligned columns, 4 decimal places for fractions, no trailing
  /// spaces. `title` goes on its own line above the header.
  void print(std::ostream& os, const std::string& title) const;

  /// Render as CSV with a `tag` first column (for scraping bench output).
  void print_csv(std::ostream& os, const std::string& tag) const;

  /// Render as a single-line JSON object
  /// `{"tag": tag, "columns": [...], "points": [{col: value, ...}, ...]}`.
  /// Numbers serialize in shortest-round-trip form, so the values parse back
  /// bit-exactly (tests/test_experiment.cpp round-trips them).
  void print_json(std::ostream& os, const std::string& tag) const;

  /// The points array alone (`[{col: value, ...}, ...]`), appended to `out`
  /// — shared by print_json and the sweep engine's --json emitter.
  void append_json_points(std::string& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept { return columns_; }
  [[nodiscard]] const std::vector<double>& row(std::size_t i) const { return rows_.at(i); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace meshroute::experiment
