// Minimal JSON value model, parser, and writer for the structured bench
// output (`--json=`). Deliberately tiny: enough to round-trip the sweep
// schema `{tag, n, trials, dests, seed, points:[...], wall_ms}` and to let
// tests and the bench smoke checker validate emitted files without an
// external dependency.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace meshroute::experiment::json {

/// A parsed JSON value. Objects keep keys sorted (std::map); the emitters in
/// this repository write keys in a fixed order, so serialization of a
/// freshly-built document is deterministic.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; throws if not an object or the key is absent.
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// True when this is an object carrying `key`.
  [[nodiscard]] bool has(const std::string& key) const noexcept;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parse a complete JSON document (trailing whitespace allowed, anything
/// else after the value is an error). Throws std::runtime_error with a
/// byte-offset message on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Serialize compactly (no whitespace). Numbers use the shortest
/// representation that round-trips the double exactly.
void write(std::string& out, const Value& v);
[[nodiscard]] std::string to_string(const Value& v);

/// Append a JSON string literal (quoted, escaped) to `out`.
void write_string(std::string& out, std::string_view s);
/// Append a number; integral values within int64 range print without a
/// decimal point, everything else uses shortest-round-trip form.
void write_number(std::string& out, double v);

}  // namespace meshroute::experiment::json
