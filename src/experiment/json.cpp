#include "experiment/json.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace meshroute::experiment::json {
namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::runtime_error("json: " + what + " at offset " + std::to_string(offset));
}

/// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail(pos_, "bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail(pos_, "bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail(pos_, "bad literal");
      return Value(nullptr);
    }
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Value::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = peek();
            ++pos_;
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail(pos_ - 1, "bad \\u escape");
          }
          // BMP code points only (no surrogate pairs) — all the emitters in
          // this repo produce plain ASCII.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail(start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) fail(start, "bad number");
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) throw std::runtime_error("json: not a bool");
  return std::get<bool>(v_);
}

double Value::as_number() const {
  if (!is_number()) throw std::runtime_error("json: not a number");
  return std::get<double>(v_);
}

const std::string& Value::as_string() const {
  if (!is_string()) throw std::runtime_error("json: not a string");
  return std::get<std::string>(v_);
}

const Value::Array& Value::as_array() const {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<Array>(v_);
}

const Value::Object& Value::as_object() const {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<Object>(v_);
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

bool Value::has(const std::string& key) const noexcept {
  return is_object() && std::get<Object>(v_).count(key) > 0;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

void write_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf; emitters never produce them
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void write(std::string& out, const Value& v) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    write_number(out, v.as_number());
  } else if (v.is_string()) {
    write_string(out, v.as_string());
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const Value& e : v.as_array()) {
      if (!first) out += ',';
      first = false;
      write(out, e);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, val] : v.as_object()) {
      if (!first) out += ',';
      first = false;
      write_string(out, key);
      out += ':';
      write(out, val);
    }
    out += '}';
  }
}

std::string to_string(const Value& v) {
  std::string out;
  write(out, v);
  return out;
}

}  // namespace meshroute::experiment::json
