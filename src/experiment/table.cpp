#include "experiment/table.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "experiment/json.hpp"

namespace meshroute::experiment {
namespace {

std::string format_cell(double v) {
  std::ostringstream os;
  if (std::abs(v - std::round(v)) < 1e-9 && std::abs(v) < 1e9) {
    os << static_cast<long long>(std::llround(v));
  } else {
    os << std::fixed << std::setprecision(4) << v;
  }
  return os.str();
}

}  // namespace

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: no columns");
}

void Table::add_row(const std::vector<double>& values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(values);
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> cells(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    cells[r].resize(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      cells[r][c] = format_cell(rows_[r][c]);
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  os << title << "\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c])) << columns_[c];
  }
  os << "\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c])) << cells[r][c];
    }
    os << "\n";
  }
}

void Table::print_csv(std::ostream& os, const std::string& tag) const {
  os << "tag";
  for (const auto& c : columns_) os << "," << c;
  os << "\n";
  for (const auto& row : rows_) {
    os << tag;
    for (const double v : row) os << "," << format_cell(v);
    os << "\n";
  }
}

void Table::append_json_points(std::string& out) const {
  out += '[';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r != 0) out += ',';
    out += '{';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c != 0) out += ',';
      json::write_string(out, columns_[c]);
      out += ':';
      json::write_number(out, rows_[r][c]);
    }
    out += '}';
  }
  out += ']';
}

void Table::print_json(std::ostream& os, const std::string& tag) const {
  std::string out;
  out += "{\"tag\":";
  json::write_string(out, tag);
  out += ",\"columns\":[";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) out += ',';
    json::write_string(out, columns_[c]);
  }
  out += "],\"points\":";
  append_json_points(out);
  out += "}";
  os << out << "\n";
}

}  // namespace meshroute::experiment
