// One simulation trial, exactly as Section 5 sets it up: an n x n mesh,
// k uniformly random faults, the source at the center (the origin of the
// paper's coordinate system), faulty blocks and MCCs constructed, fault
// information distributed, and destinations sampled from the first-quadrant
// submesh with source and destination outside every block.
#pragma once

#include <cstdint>
#include <optional>

#include "common/coord.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "cond/conditions.hpp"
#include "fault/block_model.hpp"
#include "fault/fault_set.hpp"
#include "fault/mcc_model.hpp"
#include "info/safety_level.hpp"
#include "mesh/mesh2d.hpp"
#include "route/query.hpp"

namespace meshroute::experiment {

struct TrialConfig {
  Dist n = 200;             ///< mesh side
  std::size_t faults = 0;   ///< k
  std::optional<Coord> source = std::nullopt;  ///< defaults to the mesh center

  /// Exact-match comparison, used by make_trial to decide whether a prebuilt
  /// trial (experiment/workspace.hpp) answers this request.
  friend bool operator==(const TrialConfig&, const TrialConfig&) = default;
};

/// All per-configuration state shared by destination samples.
struct Trial {
  Mesh2D mesh;
  Coord source;
  fault::FaultSet faults;
  fault::BlockSet blocks;
  fault::MccSet mcc1;           ///< type-one labeling (quadrant-I destinations)
  Grid<bool> faulty_mask;       ///< truly faulty nodes only (ground-truth oracle)
  Grid<bool> fb_mask;           ///< faulty-block nodes
  Grid<bool> mcc_mask;          ///< type-one MCC nodes
  info::SafetyGrid fb_safety;
  info::SafetyGrid mcc_safety;

  /// Condition-checking problems under each fault model.
  [[nodiscard]] cond::RoutingProblem fb_problem(Coord dest) const {
    return {&mesh, &fb_mask, &fb_safety, source, dest};
  }
  [[nodiscard]] cond::RoutingProblem mcc_problem(Coord dest) const {
    return {&mesh, &mcc_mask, &mcc_safety, source, dest};
  }

  /// The consolidated read-side bundle (route/query.hpp) over this trial's
  /// planes. Only type-one MCC planes are built (the paper's quadrant-I
  /// destinations), so Mcc-model queries into quadrants II/IV throw; no
  /// boundary deposits means routing sees global information.
  [[nodiscard]] route::QueryView query_view() const {
    route::QueryView v;
    v.mesh = &mesh;
    v.blocks = &blocks;
    v.faulty_mask = &faulty_mask;
    v.fb_mask = &fb_mask;
    v.fb_safety = &fb_safety;
    v.mcc1_mask = &mcc_mask;
    v.mcc1_safety = &mcc_safety;
    return v;
  }

  /// First-quadrant submesh: from one hop past the source to the mesh
  /// corner (destinations with xd, yd >= 1, as the paper requires).
  [[nodiscard]] Rect quadrant1_area() const {
    return Rect{source.x + 1, mesh.width() - 1, source.y + 1, mesh.height() - 1};
  }

  /// Ground-truth reachability of every node from the source avoiding the
  /// truly faulty nodes, in one O(area) pass (cond::monotone_reachability):
  /// out[d] answers "does a minimal s-d path exist?" for all d at once.
  /// The in-place form writes into a caller-owned grid (e.g. a
  /// TrialWorkspace's reach buffer), allocating nothing in steady state.
  void reachability(Grid<bool>& out) const;
  [[nodiscard]] Grid<bool> reachability() const;
};

/// Build a trial; re-rolls the fault placement until the source lies outside
/// every faulty block and MCC (the paper's simplifying assumption).
[[nodiscard]] Trial make_trial(const TrialConfig& config, Rng& rng);

/// A destination uniform in the first-quadrant submesh, outside every block
/// and MCC (re-sampled until valid). Throws if no valid destination exists.
[[nodiscard]] Coord sample_quadrant1_dest(const Trial& trial, Rng& rng);

}  // namespace meshroute::experiment
