#include "experiment/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/simd.hpp"
#include "experiment/json.hpp"
#include "experiment/workspace.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace meshroute::experiment {
namespace {

/// Parse a non-negative integer flag value; throws on garbage.
int parse_int(const std::string& flag, const char* value) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < 0) {
    throw std::invalid_argument(flag + " expects a non-negative integer, got '" + value + "'");
  }
  return static_cast<int>(v);
}

}  // namespace

std::string SweepConfig::usage() {
  return
      "usage: <bench> [--trials=N] [--dests=N] [--n=N] [--seed=S] [--threads=T]\n"
      "               [--batch=B] [--json=FILE|-] [--metrics=FILE|-] [--quick]\n"
      "  --trials=N     fault configurations per sweep point   (default 60)\n"
      "  --dests=N      destinations per configuration          (default 40)\n"
      "  --n=N          mesh side                               (default 200)\n"
      "  --seed=S       base seed, decimal or 0x hex            (default 0x5eed2002)\n"
      "  --threads=T    worker threads, 0 = hardware            (default 0)\n"
      "  --batch=B      trials prebuilt per worker claim via the SoA batch\n"
      "                 kernels, 1-64; results identical to B=1; 0 = auto,\n"
      "                 scaled to threads x SIMD tier             (default 0)\n"
      "  --json=FILE    structured output; '-' writes the JSON as stdout's last line\n"
      "  --metrics=FILE flat counter/histogram snapshot (obs registry); '-' = stdout\n"
      "  --quick        smoke-test sweep (trials=8, dests=10)\n";
}

std::optional<SweepConfig> SweepConfig::try_parse(int argc, char** argv, std::string* error) {
  SweepConfig cfg;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value_of = [&](std::string_view prefix) -> const char* {
        return arg.compare(0, prefix.size(), prefix) == 0 ? arg.c_str() + prefix.size()
                                                          : nullptr;
      };
      if (const char* v = value_of("--trials=")) {
        cfg.trials = parse_int("--trials", v);
        if (cfg.trials <= 0) throw std::invalid_argument("--trials must be positive");
      } else if (const char* v = value_of("--dests=")) {
        cfg.dests = parse_int("--dests", v);
        if (cfg.dests <= 0) throw std::invalid_argument("--dests must be positive");
      } else if (const char* v = value_of("--n=")) {
        cfg.n = static_cast<Dist>(parse_int("--n", v));
        if (cfg.n < 2) throw std::invalid_argument("--n must be at least 2");
      } else if (const char* v = value_of("--seed=")) {
        char* end = nullptr;
        cfg.seed = std::strtoull(v, &end, 0);  // base 0: decimal and 0x hex
        if (end == v || *end != '\0') {
          throw std::invalid_argument(std::string("--seed expects an integer, got '") + v +
                                      "'");
        }
      } else if (const char* v = value_of("--threads=")) {
        cfg.threads = parse_int("--threads", v);
      } else if (const char* v = value_of("--batch=")) {
        cfg.batch = parse_int("--batch", v);
        if (cfg.batch > 64) {
          throw std::invalid_argument("--batch must be in [0, 64] (0 = auto)");
        }
      } else if (const char* v = value_of("--json=")) {
        if (*v == '\0') throw std::invalid_argument("--json expects a file name or '-'");
        cfg.json_path = v;
      } else if (const char* v = value_of("--metrics=")) {
        if (*v == '\0') throw std::invalid_argument("--metrics expects a file name or '-'");
        cfg.metrics_path = v;
      } else if (arg == "--quick") {
        cfg.quick = true;
        cfg.trials = 8;
        cfg.dests = 10;
      } else {
        throw std::invalid_argument("unknown flag '" + arg + "'");
      }
    }
  } catch (const std::invalid_argument& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
  return cfg;
}

SweepConfig SweepConfig::parse(int argc, char** argv) {
  std::string error;
  if (auto cfg = try_parse(argc, argv, &error)) return *std::move(cfg);
  std::cerr << "error: " << error << "\n" << usage();
  std::exit(2);
}

int SweepConfig::resolved_threads() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int SweepConfig::resolved_batch() const {
  if (batch > 0) return batch;
  return default_batch_for(resolved_threads(), core::simd::active_tier());
}

int default_batch_for(int threads, core::simd::Tier tier) noexcept {
  // Memory-bound prebuilds (DESIGN §12): narrow runs get nothing from wide
  // claims, and the scalar tier has no word-parallel sweeps to amortize.
  if (threads <= 2 || tier == core::simd::Tier::Scalar) return 1;
  return std::min(64, 8 * std::max(1, threads / 4));
}

std::string SweepConfig::setup_string() const {
  return "n=" + std::to_string(n) + ", " + std::to_string(trials) + " trials x " +
         std::to_string(dests) + " destinations";
}

SweepResult::SweepResult(std::vector<std::string> columns, std::vector<SweepPoint> points,
                         std::vector<std::vector<analysis::Accumulator>> stats,
                         double wall_ms)
    : columns_(std::move(columns)),
      points_(std::move(points)),
      stats_(std::move(stats)),
      wall_ms_(wall_ms) {}

std::size_t SweepResult::column_index(std::string_view column) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c] == column) return c;
  }
  throw std::invalid_argument("SweepResult: unknown column '" + std::string(column) + "'");
}

double SweepResult::mean(std::size_t point, std::string_view column) const {
  return stats_.at(point)[column_index(column)].mean();
}

double SweepResult::mean_or(std::size_t point, std::string_view column,
                            double fallback) const {
  const analysis::Accumulator& a = stats_.at(point)[column_index(column)];
  return a.count() > 0 ? a.mean() : fallback;
}

double SweepResult::ci95(std::size_t point, std::string_view column) const {
  return stats_.at(point)[column_index(column)].ci95_half_width();
}

std::int64_t SweepResult::count(std::size_t point, std::string_view column) const {
  return stats_.at(point)[column_index(column)].count();
}

Table SweepResult::table(const std::string& x_name,
                         const std::vector<std::string>& selected,
                         const std::vector<std::string>& headers) const {
  if (!headers.empty() && headers.size() != selected.size()) {
    throw std::invalid_argument("SweepResult::table: headers/selected size mismatch");
  }
  std::vector<std::size_t> indices;
  indices.reserve(selected.size());
  for (const std::string& name : selected) indices.push_back(column_index(name));

  std::vector<std::string> table_columns{x_name};
  for (std::size_t i = 0; i < selected.size(); ++i) {
    table_columns.push_back(headers.empty() ? selected[i] : headers[i]);
  }
  Table t(std::move(table_columns));
  for (std::size_t p = 0; p < points_.size(); ++p) {
    std::vector<double> row{points_[p].x};
    for (const std::size_t c : indices) row.push_back(stats_[p][c].mean());
    t.add_row(row);
  }
  return t;
}

SweepRunner::SweepRunner(SweepConfig config, std::vector<std::string> columns)
    : config_(std::move(config)), columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("SweepRunner: no columns");
}

SweepResult SweepRunner::run(const TrialFn& fn) const {
  return run(fault_count_points(config_.fault_counts), fn);
}

SweepResult SweepRunner::run(std::vector<SweepPoint> points, const TrialFn& fn) const {
  const auto t0 = std::chrono::steady_clock::now();
  for (SweepPoint& p : points) {
    if (p.n == 0) p.n = config_.n;
    if (p.trials <= 0) p.trials = config_.trials;
  }

  struct CellRef {
    std::size_t point;
    int trial;
  };
  std::vector<CellRef> cells;
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (int t = 0; t < points[p].trials; ++t) cells.push_back({p, t});
  }

  // Every cell accumulates into its own private row; the pool only ever
  // races on the work-queue cursor.
  std::vector<TrialCounters> raw(cells.size(), TrialCounters(columns_.size()));
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  // Per-cell wall time is split into the trial/model construction share
  // (whatever make_trial charged to workspace.build_us) and the remainder
  // (routing + oracle evaluation): two steady_clock reads per cell, noise
  // next to a trial's work. Cells are counted too so --metrics always
  // reports how much grid a run covered.
  obs::Counter& cells_ctr = obs::Registry::global().counter("sweep.cells");
  obs::Histogram& build_us_hist = obs::Registry::global().histogram("sweep.build_us");
  obs::Histogram& route_us_hist = obs::Registry::global().histogram("sweep.route_us");
  obs::Histogram& prebuild_us_hist = obs::Registry::global().histogram("sweep.prebuild_us");

  const auto batch = static_cast<std::size_t>(std::max(1, config_.resolved_batch()));
  const auto worker = [&]() {
    TrialWorkspace workspace;
    // Each worker thread collects trace events into its own buffer; the
    // canonical event order is value-based, so the thread assignment of
    // cells never shows in sorted output.
    std::optional<obs::TraceScope> scope;
    if (trace_sink_ != nullptr) scope.emplace(*trace_sink_);
    std::vector<TrialConfig> lane_configs;
    std::vector<Rng> lane_rngs;
    const auto record_error = [&] {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    };
    for (;;) {
      const std::size_t begin = next.fetch_add(batch, std::memory_order_relaxed);
      if (begin >= cells.size()) return;
      const std::size_t end = std::min(cells.size(), begin + batch);
      std::size_t i = begin;
      while (i < end) {
        // With --batch > 1 the claimed strip's trials are prebuilt through
        // the SoA batch kernels, one prebuild per run of equal mesh side;
        // the functor then consumes them via make_trial's exact (config,
        // rng-state) match, so results are identical to --batch=1. Cells
        // whose functor requests a different config simply miss the match
        // and build directly.
        std::size_t strip = i + 1;
        if (batch > 1) {
          while (strip < end && points[cells[strip].point].n == points[cells[i].point].n) {
            ++strip;
          }
          const auto p0 = std::chrono::steady_clock::now();
          lane_configs.clear();
          lane_rngs.clear();
          for (std::size_t c = i; c < strip; ++c) {
            const SweepPoint& p = points[cells[c].point];
            lane_configs.push_back(TrialConfig{.n = p.n, .faults = p.faults, .source = {}});
            lane_rngs.emplace_back(cell_seed(config_.seed, p.faults, p.n, cells[c].trial));
          }
          try {
            prebuild_trials(lane_configs, lane_rngs, workspace);
          } catch (...) {
            record_error();
            return;
          }
          prebuild_us_hist.observe(std::chrono::duration_cast<std::chrono::microseconds>(
                                       std::chrono::steady_clock::now() - p0)
                                       .count());
        }
        for (; i < strip; ++i) {
          const CellRef& ref = cells[i];
          const SweepPoint& p = points[ref.point];
          Rng rng(cell_seed(config_.seed, p.faults, p.n, ref.trial));
          try {
            workspace.build_us = 0.0;
            const auto c0 = std::chrono::steady_clock::now();
            fn(SweepCell{p, ref.trial, ref.point}, rng, workspace, raw[i]);
            const auto c1 = std::chrono::steady_clock::now();
            cells_ctr.add(1);
            const auto total_us =
                std::chrono::duration_cast<std::chrono::microseconds>(c1 - c0).count();
            const auto build_us = static_cast<std::int64_t>(workspace.build_us);
            build_us_hist.observe(std::min<std::int64_t>(build_us, total_us));
            route_us_hist.observe(std::max<std::int64_t>(total_us - build_us, 0));
          } catch (...) {
            record_error();
            return;
          }
        }
      }
    }
  };

  const int nthreads = std::max(
      1, std::min(config_.resolved_threads(), static_cast<int>(cells.size())));
  if (nthreads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  // Fixed-order reduction: cells were enumerated grouped by point in trial
  // order, so merging sequentially is identical for every thread count.
  std::vector<std::vector<analysis::Accumulator>> stats(
      points.size(), std::vector<analysis::Accumulator>(columns_.size()));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      stats[cells[i].point][c].merge(raw[i].cell(c));
    }
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  return SweepResult(columns_, std::move(points), std::move(stats), wall_ms);
}

std::vector<SweepPoint> fault_count_points(const std::vector<std::size_t>& ks) {
  std::vector<SweepPoint> points;
  points.reserve(ks.size());
  for (const std::size_t k : ks) {
    points.push_back(SweepPoint{.x = static_cast<double>(k), .faults = k});
  }
  return points;
}

void write_sweep_json(std::ostream& os, const SweepConfig& config,
                      const std::vector<TaggedTable>& tables, double wall_ms) {
  std::string out;
  out += '[';
  for (std::size_t i = 0; i < tables.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"tag\":";
    json::write_string(out, tables[i].tag);
    out += ",\"n\":" + std::to_string(config.n);
    out += ",\"trials\":" + std::to_string(config.trials);
    out += ",\"dests\":" + std::to_string(config.dests);
    out += ",\"seed\":" + std::to_string(config.seed);
    out += ",\"points\":";
    tables[i].table->append_json_points(out);
    out += ",\"wall_ms\":";
    json::write_number(out, wall_ms);
    out += '}';
  }
  out += ']';
  os << out << "\n";
}

bool write_sweep_json(const SweepConfig& config, const std::vector<TaggedTable>& tables,
                      double wall_ms) {
  bool wrote = false;
  if (!config.json_path.empty()) {
    if (config.json_path == "-") {
      write_sweep_json(std::cout, config, tables, wall_ms);
    } else {
      std::ofstream file(config.json_path);
      if (!file) {
        std::cerr << "error: cannot open --json file '" << config.json_path << "'\n";
        std::exit(1);
      }
      write_sweep_json(file, config, tables, wall_ms);
    }
    wrote = true;
  }
  if (!config.metrics_path.empty()) {
    if (!obs::write_metrics_json(config.metrics_path, obs::Registry::global().snapshot())) {
      std::cerr << "error: cannot open --metrics file '" << config.metrics_path << "'\n";
      std::exit(1);
    }
    wrote = true;
  }
  return wrote;
}

}  // namespace meshroute::experiment
