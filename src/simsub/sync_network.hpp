// A synchronous message-passing substrate over a 2-D mesh.
//
// The paper's information model is distributed: nodes sense adjacent faults
// and propagate coded information hop by hop ("the distribution and update
// process of such information is simple and converges quickly", Section 4).
// SyncNetwork executes such protocols honestly: per round, every queued
// message crosses exactly one link and is handled at its receiver, which may
// update local state and emit further messages. Inactive nodes (faulty /
// block nodes) silently drop traffic. The run reports rounds-to-quiescence
// and total link traversals, the two convergence costs the paper argues are
// small.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/coord.hpp"
#include "common/grid.hpp"
#include "mesh/mesh2d.hpp"

namespace meshroute::simsub {

/// Cost accounting for one protocol execution.
struct ProtocolStats {
  std::int64_t rounds = 0;    ///< synchronous rounds until no message in flight
  std::int64_t messages = 0;  ///< total link traversals (dropped ones included)
  std::int64_t delivered = 0; ///< messages actually handled by an active node
};

/// Synchronous network of per-node State exchanging Msg values.
template <typename State, typename Msg>
class SyncNetwork {
 public:
  /// Handler invoked at the receiving node. `from` is the direction the
  /// message arrived from (i.e. the side of the sender as seen by the
  /// receiver). The handler may call send() to emit next-round messages.
  using Handler =
      std::function<void(Coord self, State& state, Direction from, const Msg& msg)>;

  /// `inactive` marks nodes that neither handle nor originate messages
  /// (faulty/block nodes); null means all nodes active.
  SyncNetwork(const Mesh2D& mesh, const Grid<bool>* inactive, State init = State{})
      : mesh_(mesh), states_(mesh.width(), mesh.height(), std::move(init)) {
    if (inactive != nullptr) {
      if (inactive->width() != mesh.width() || inactive->height() != mesh.height()) {
        throw std::invalid_argument("SyncNetwork: inactive mask size mismatch");
      }
      inactive_ = *inactive;
    } else {
      inactive_ = Grid<bool>(mesh.width(), mesh.height(), false);
    }
  }

  [[nodiscard]] auto& state(Coord c) { return states_.at(c); }
  [[nodiscard]] const auto& state(Coord c) const { return states_.at(c); }
  [[nodiscard]] const Grid<State>& states() const noexcept { return states_; }

  [[nodiscard]] bool active(Coord c) const noexcept {
    return mesh_.in_bounds(c) && !inactive_[c];
  }

  /// Queue a message from `from` across the link in direction `d`; it is
  /// delivered next round. Messages addressed off-mesh or to inactive nodes
  /// are counted and dropped (a send onto a dead link).
  void send(Coord from, Direction d, Msg msg) {
    const Coord to = neighbor(from, d);
    ++stats_.messages;
    if (!active(to)) return;
    pending_.push_back(Envelope{to, opposite(d), std::move(msg)});
  }

  /// Run `handler` until quiescence (no messages in flight). Seed messages
  /// must have been queued via send() beforehand. Throws if the protocol has
  /// not converged after `max_rounds` — a liveness bug in the protocol.
  ProtocolStats run(const Handler& handler, std::int64_t max_rounds) {
    while (!pending_.empty()) {
      if (++stats_.rounds > max_rounds) {
        throw std::runtime_error("SyncNetwork: protocol did not converge");
      }
      std::vector<Envelope> inflight;
      inflight.swap(pending_);
      for (const Envelope& env : inflight) {
        ++stats_.delivered;
        handler(env.to, states_[env.to], env.from, env.msg);
      }
    }
    return stats_;
  }

  [[nodiscard]] const ProtocolStats& stats() const noexcept { return stats_; }

 private:
  struct Envelope {
    Coord to;
    Direction from;
    Msg msg;
  };

  const Mesh2D& mesh_;
  Grid<State> states_;
  Grid<bool> inactive_;
  std::vector<Envelope> pending_;
  ProtocolStats stats_;
};

}  // namespace meshroute::simsub
