// A synchronous message-passing substrate over a 2-D mesh.
//
// The paper's information model is distributed: nodes sense adjacent faults
// and propagate coded information hop by hop ("the distribution and update
// process of such information is simple and converges quickly", Section 4).
// SyncNetwork executes such protocols honestly: per round, every queued
// message crosses exactly one link and is handled at its receiver, which may
// update local state and emit further messages. Inactive nodes (faulty /
// block nodes) silently drop traffic. The run reports rounds-to-quiescence
// and total link traversals, the two convergence costs the paper argues are
// small.
//
// run_lossy() executes the same protocol over UNRELIABLE links: each link
// crossing may be dropped, delayed, or duplicated per a seeded LossConfig.
// Dropped crossings are retransmitted with exponential backoff (the outcome
// of per-link stop-and-wait ARQ, without simulating the ACKs), so handlers
// stay unchanged and every protocol that converges on reliable links still
// converges — with the retry/duplicate counts reported in ProtocolStats.
// An all-zero LossConfig makes run_lossy byte-identical to run().
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/coord.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "mesh/mesh2d.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace meshroute::simsub {

/// Cost accounting for one protocol execution.
struct ProtocolStats {
  std::int64_t rounds = 0;    ///< synchronous rounds until no message in flight
  std::int64_t messages = 0;  ///< total link traversals (dropped ones included)
  std::int64_t delivered = 0; ///< messages actually handled by an active node
  std::int64_t dropped = 0;   ///< crossings lost to the fault process
  std::int64_t retries = 0;   ///< ARQ retransmissions scheduled after drops
  std::int64_t duplicated = 0; ///< extra deliveries from link duplication
  std::int64_t delayed = 0;   ///< deliveries postponed by link delay
  std::int64_t lost = 0;      ///< messages abandoned after max_retries
};

/// Unreliable-link model for run_lossy: per-crossing drop/delay/duplication
/// probabilities plus the ARQ (retransmit) policy recovering from drops.
/// Fully seeded — the same config replays the same fault pattern.
struct LossConfig {
  double drop = 0.0;       ///< probability a crossing attempt is lost
  double duplicate = 0.0;  ///< probability a delivery is handled twice
  double delay = 0.0;      ///< probability a delivery is postponed
  int max_delay = 3;       ///< postponement is uniform in [1, max_delay] rounds
  int retry_interval = 2;  ///< rounds before the first retransmission
  int max_retries = 64;    ///< abandon (count as lost) after this many drops
  std::uint64_t seed = 0x10551055;

  friend constexpr bool operator==(const LossConfig&, const LossConfig&) = default;

  [[nodiscard]] constexpr bool lossless() const noexcept {
    return drop == 0.0 && duplicate == 0.0 && delay == 0.0;
  }
};

/// Synchronous network of per-node State exchanging Msg values.
template <typename State, typename Msg>
class SyncNetwork {
 public:
  /// Handler invoked at the receiving node. `from` is the direction the
  /// message arrived from (i.e. the side of the sender as seen by the
  /// receiver). The handler may call send() to emit next-round messages.
  using Handler =
      std::function<void(Coord self, State& state, Direction from, const Msg& msg)>;

  /// `inactive` marks nodes that neither handle nor originate messages
  /// (faulty/block nodes); null means all nodes active.
  SyncNetwork(const Mesh2D& mesh, const Grid<bool>* inactive, State init = State{})
      : mesh_(mesh), states_(mesh.width(), mesh.height(), std::move(init)) {
    if (inactive != nullptr) {
      if (inactive->width() != mesh.width() || inactive->height() != mesh.height()) {
        throw std::invalid_argument("SyncNetwork: inactive mask size mismatch");
      }
      inactive_ = *inactive;
    } else {
      inactive_ = Grid<bool>(mesh.width(), mesh.height(), false);
    }
  }

  [[nodiscard]] auto& state(Coord c) { return states_.at(c); }
  [[nodiscard]] const auto& state(Coord c) const { return states_.at(c); }
  [[nodiscard]] const Grid<State>& states() const noexcept { return states_; }

  [[nodiscard]] bool active(Coord c) const noexcept {
    return mesh_.in_bounds(c) && !inactive_[c];
  }

  /// Queue a message from `from` across the link in direction `d`; it is
  /// delivered next round. Messages addressed off-mesh or to inactive nodes
  /// are counted and dropped (a send onto a dead link).
  void send(Coord from, Direction d, Msg msg) {
    const Coord to = neighbor(from, d);
    ++stats_.messages;
    if (!active(to)) return;
    pending_.push_back(Envelope{to, opposite(d), std::move(msg)});
  }

  /// Run `handler` until quiescence (no messages in flight). Seed messages
  /// must have been queued via send() beforehand. Throws if the protocol has
  /// not converged after `max_rounds` — a liveness bug in the protocol.
  ProtocolStats run(const Handler& handler, std::int64_t max_rounds) {
    while (!pending_.empty()) {
      if (++stats_.rounds > max_rounds) {
        throw std::runtime_error("SyncNetwork: protocol did not converge");
      }
      std::vector<Envelope> inflight;
      inflight.swap(pending_);
      for (const Envelope& env : inflight) {
        ++stats_.delivered;
        handler(env.to, states_[env.to], env.from, env.msg);
      }
    }
    return stats_;
  }

  /// Run `handler` to quiescence over unreliable links (see LossConfig).
  /// Every crossing attempt counts in stats_.messages; drops trigger
  /// backoff retransmissions until max_retries, after which the message is
  /// abandoned and counted lost. `max_rounds` bounds the wall clock exactly
  /// as in run() — size it for the retry tail (drop 0.2 with the default
  /// ARQ knobs converges well inside 8x the lossless round count).
  ProtocolStats run_lossy(const Handler& handler, std::int64_t max_rounds,
                          const LossConfig& loss) {
    Rng rng(loss.seed);
    // stats_ accumulates across run()/run_lossy() calls on one network, so
    // flush only this call's delta into the registry at the end.
    const ProtocolStats before = stats_;
    // Transfers due at a given round, processed in queue order (deterministic
    // for a fixed seed; there is no cross-thread concurrency here).
    struct Transfer {
      std::int64_t due;
      int attempts;
      Envelope env;
    };
    std::vector<Transfer> wheel;
    const auto enqueue_pending = [&](std::int64_t due) {
      for (Envelope& env : pending_) wheel.push_back(Transfer{due, 0, std::move(env)});
      pending_.clear();
    };
    enqueue_pending(stats_.rounds + 1);

    std::vector<Transfer> due_now;
    std::vector<Transfer> waiting;
    while (!wheel.empty()) {
      if (++stats_.rounds > max_rounds) {
        throw std::runtime_error("SyncNetwork: protocol did not converge");
      }
      due_now.clear();
      waiting.clear();
      for (Transfer& t : wheel) {
        (t.due <= stats_.rounds ? due_now : waiting).push_back(std::move(t));
      }
      wheel.swap(waiting);
      for (Transfer& t : due_now) {
        if (t.attempts > 0) {
          ++stats_.messages;  // the retransmission crosses the link again
        }
        if (loss.drop > 0.0 && rng.chance(loss.drop)) {
          ++stats_.dropped;
          if (t.attempts >= loss.max_retries) {
            ++stats_.lost;
            continue;
          }
          ++stats_.retries;
          // Exponential backoff, capped so the wait stays bounded.
          const int exponent = t.attempts < 5 ? t.attempts : 5;
          const std::int64_t backoff = static_cast<std::int64_t>(loss.retry_interval)
                                       << exponent;
          t.due = stats_.rounds + backoff;
          ++t.attempts;
          MESHROUTE_TRACE_EVENT(obs::EventKind::ArqRetry, 0, stats_.rounds, t.env.to,
                                t.attempts, backoff);
          wheel.push_back(std::move(t));
          continue;
        }
        if (loss.delay > 0.0 && rng.chance(loss.delay)) {
          ++stats_.delayed;
          t.due = stats_.rounds + rng.uniform(1, loss.max_delay < 1 ? 1 : loss.max_delay);
          wheel.push_back(std::move(t));
          continue;
        }
        const int deliveries = (loss.duplicate > 0.0 && rng.chance(loss.duplicate)) ? 2 : 1;
        for (int i = 0; i < deliveries; ++i) {
          ++stats_.delivered;
          if (i > 0) ++stats_.duplicated;
          handler(t.env.to, states_[t.env.to], t.env.from, t.env.msg);
        }
      }
      enqueue_pending(stats_.rounds + 1);
    }
    static obs::Counter& runs_ctr = obs::Registry::global().counter("simsub.lossy.runs");
    static obs::Counter& retries_ctr =
        obs::Registry::global().counter("simsub.lossy.retries");
    static obs::Counter& dropped_ctr =
        obs::Registry::global().counter("simsub.lossy.dropped");
    static obs::Counter& lost_ctr = obs::Registry::global().counter("simsub.lossy.lost");
    runs_ctr.add(1);
    retries_ctr.add(stats_.retries - before.retries);
    dropped_ctr.add(stats_.dropped - before.dropped);
    lost_ctr.add(stats_.lost - before.lost);
    return stats_;
  }

  [[nodiscard]] const ProtocolStats& stats() const noexcept { return stats_; }

 private:
  struct Envelope {
    Coord to;
    Direction from;
    Msg msg;
  };

  const Mesh2D& mesh_;
  Grid<State> states_;
  Grid<bool> inactive_;
  std::vector<Envelope> pending_;
  ProtocolStats stats_;
};

}  // namespace meshroute::simsub
