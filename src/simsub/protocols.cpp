#include "simsub/protocols.hpp"

#include <algorithm>

#include "info/regions.hpp"

namespace meshroute::simsub {
namespace {

/// Safety-level chain message: which tuple field it carries and its value at
/// the sender.
struct LevelMsg {
  Direction field;
  Dist value;
};

/// Boundary trail message: the block record plus the trail geometry.
struct TrailMsg {
  std::int32_t block;
  Direction primary;
  Direction slide;
};

/// Bound the lossy run: retransmission backoff stretches convergence well
/// past the lossless round count; 64x + slack covers drop rates to 0.5
/// with the default ARQ knobs.
std::int64_t lossy_rounds(std::int64_t lossless_rounds) {
  return lossless_rounds * 64 + 256;
}

}  // namespace

DistributedSafetyLevels distributed_safety_levels(const Mesh2D& mesh,
                                                  const Grid<bool>& obstacles,
                                                  const LossConfig* loss) {
  SyncNetwork<info::ExtendedSafetyLevel, LevelMsg> net(mesh, &obstacles);

  // Sensing phase: a node with a block neighbor in direction d knows its
  // level there is 0 and pushes the chain one hop away from the block.
  mesh.for_each_node([&](Coord c) {
    if (obstacles[c]) return;
    for (const Direction d : kAllDirections) {
      const Coord v = neighbor(c, d);
      if (mesh.in_bounds(v) && obstacles[v]) {
        net.state(c).set(d, 0);
        net.send(c, opposite(d), LevelMsg{d, 0});
      }
    }
  });

  // Chain phase: "upon receiving (E', ...) from East neighbor: u's E is
  // E' + 1; forward to West neighbor (if any)".
  const auto handler = [&](Coord self, info::ExtendedSafetyLevel& st, Direction from,
                           const LevelMsg& msg) {
    if (from != msg.field) return;  // chain messages only flow along their axis
    const Dist updated = msg.value + 1;
    if (st.get(msg.field) == updated) return;  // duplicate delivery: chain already ran
    st.set(msg.field, updated);
    net.send(self, opposite(msg.field), LevelMsg{msg.field, updated});
  };

  const auto max_rounds = static_cast<std::int64_t>(mesh.width()) + mesh.height() + 4;
  const ProtocolStats stats = loss != nullptr
                                  ? net.run_lossy(handler, lossy_rounds(max_rounds), *loss)
                                  : net.run(handler, max_rounds);
  return DistributedSafetyLevels{net.states(), stats};
}

DistributedBoundaryInfo distributed_boundary_info(const Mesh2D& mesh,
                                                  const fault::BlockSet& blocks,
                                                  const LossConfig* loss) {
  Grid<bool> inactive(mesh.width(), mesh.height(), false);
  mesh.for_each_node([&](Coord c) { inactive[c] = blocks.is_block_node(c); });

  SyncNetwork<std::vector<std::int32_t>, TrailMsg> net(mesh, &inactive);

  const auto deposit = [&](Coord c, std::int32_t id) {
    auto& v = net.state(c);
    if (std::find(v.begin(), v.end(), id) == v.end()) v.push_back(id);
  };

  // Ring sensing + trail seeding. Ring nodes learn the block by adjacency;
  // the four corner pairs originate the eight outward trails.
  const auto& blist = blocks.blocks();
  for (std::size_t b = 0; b < blist.size(); ++b) {
    const auto id = static_cast<std::int32_t>(b);
    const Rect ring = blist[b].rect.expanded(1);
    for (Dist x = ring.xmin; x <= ring.xmax; ++x) {
      for (const Dist y : {ring.ymin, ring.ymax}) {
        if (mesh.in_bounds({x, y})) deposit({x, y}, id);
      }
    }
    for (Dist y = ring.ymin + 1; y <= ring.ymax - 1; ++y) {
      for (const Dist x : {ring.xmin, ring.xmax}) {
        if (mesh.in_bounds({x, y})) deposit({x, y}, id);
      }
    }

    const Coord sw{ring.xmin, ring.ymin};
    const Coord se{ring.xmax, ring.ymin};
    const Coord nw{ring.xmin, ring.ymax};
    const Coord ne{ring.xmax, ring.ymax};
    struct Seed {
      Coord corner;
      Direction primary;
      Direction slide;
    };
    const Seed seeds[] = {
        {sw, Direction::West, Direction::South},  {se, Direction::East, Direction::South},
        {ne, Direction::East, Direction::North},  {nw, Direction::West, Direction::North},
        {sw, Direction::South, Direction::West},  {nw, Direction::North, Direction::West},
        {ne, Direction::North, Direction::East},  {se, Direction::South, Direction::East},
    };
    for (const Seed& s : seeds) {
      if (!mesh.in_bounds(s.corner) || inactive[s.corner]) continue;
      // The corner relays the trail outward; the send models its first hop.
      // If the way ahead is blocked the corner slides, mirroring the
      // turn-and-join rule from the very first step.
      const Coord ahead = neighbor(s.corner, s.primary);
      if (mesh.in_bounds(ahead) && !inactive[ahead]) {
        net.send(s.corner, s.primary, TrailMsg{id, s.primary, s.slide});
      } else if (mesh.in_bounds(ahead)) {
        net.send(s.corner, s.slide, TrailMsg{id, s.primary, s.slide});
      }
    }
  }

  // Relay: deposit and forward — straight ahead when clear, slide when the
  // neighbor ahead is a block node (local 1-hop sensing only).
  const auto handler = [&](Coord self, std::vector<std::int32_t>& st, Direction /*from*/,
                           const TrailMsg& msg) {
    if (std::find(st.begin(), st.end(), msg.block) == st.end()) st.push_back(msg.block);
    const Coord ahead = neighbor(self, msg.primary);
    if (!mesh.in_bounds(ahead)) return;  // trail ends at the mesh edge
    if (!inactive[ahead]) {
      net.send(self, msg.primary, msg);
    } else {
      const Coord aside = neighbor(self, msg.slide);
      if (mesh.in_bounds(aside) && !inactive[aside]) net.send(self, msg.slide, msg);
    }
  };

  const auto max_rounds =
      2 * (static_cast<std::int64_t>(mesh.width()) + mesh.height()) * 8 + 16;
  const ProtocolStats stats = loss != nullptr
                                  ? net.run_lossy(handler, lossy_rounds(max_rounds), *loss)
                                  : net.run(handler, max_rounds);
  return DistributedBoundaryInfo{net.states(), stats};
}

DistributedRegionExchange distributed_region_exchange(const Mesh2D& mesh,
                                                      const Grid<bool>& obstacles,
                                                      const info::SafetyGrid& levels,
                                                      const LossConfig* loss) {
  // Message: the accumulated levels of every node the wave passed so far,
  // flowing in one direction; receivers keep a copy and forward the grown
  // list. Row waves run East/West, column waves North/South; a wave stops
  // at an obstacle or the mesh edge (the region boundary).
  struct Accumulated {
    std::vector<RegionEntry> entries;
  };
  struct State {
    std::vector<RegionEntry> row;
    std::vector<RegionEntry> col;
  };

  SyncNetwork<State, Accumulated> net(mesh, &obstacles);
  std::int64_t payload = 0;

  // Only nodes on affected rows/columns participate (Section 4: nodes and
  // only nodes on affected rows and columns need to collect the levels).
  const std::vector<Dist> rows = info::affected_rows(mesh, obstacles);
  const std::vector<Dist> cols = info::affected_columns(mesh, obstacles);
  Grid<bool> row_active(mesh.width(), mesh.height(), false);
  Grid<bool> col_active(mesh.width(), mesh.height(), false);
  for (const Dist y : rows) {
    for (Dist x = 0; x < mesh.width(); ++x) row_active[{x, y}] = true;
  }
  for (const Dist x : cols) {
    for (Dist y = 0; y < mesh.height(); ++y) col_active[{x, y}] = true;
  }

  // Seed at the two ends of each region only (the paper's two-end scheme):
  // the node bordering the region boundary in direction d starts the wave
  // flowing toward opposite(d), carrying just its own level. Interior nodes
  // never seed — they grow and forward the passing accumulation.
  const auto is_region_end = [&](Coord c, Direction d) {
    const Coord v = neighbor(c, d);
    return !mesh.in_bounds(v) || obstacles[v];
  };
  mesh.for_each_node([&](Coord c) {
    if (obstacles[c]) return;
    const Accumulated self{{RegionEntry{c, levels[c]}}};
    if (row_active[c]) {
      if (is_region_end(c, Direction::East)) net.send(c, Direction::West, self);
      if (is_region_end(c, Direction::West)) net.send(c, Direction::East, self);
    }
    if (col_active[c]) {
      if (is_region_end(c, Direction::North)) net.send(c, Direction::South, self);
      if (is_region_end(c, Direction::South)) net.send(c, Direction::North, self);
    }
  });

  const auto handler = [&](Coord self, State& st, Direction from, const Accumulated& msg) {
    payload += static_cast<std::int64_t>(msg.entries.size());
    auto& bucket = is_horizontal(from) ? st.row : st.col;
    // Entries arrive from one side in strictly growing distance; on reliable
    // links a node never sees duplicates. A duplicated wave message (lossy
    // runs) is an exact copy of one already appended — detect it by its
    // leading entry and drop it whole, forwarding nothing, so duplicate
    // cascades die at the first hop.
    const auto already = [&](const RegionEntry& e) {
      for (const RegionEntry& have : bucket) {
        if (have.node == e.node) return true;
      }
      return false;
    };
    if (!msg.entries.empty() && already(msg.entries.front())) return;
    bucket.insert(bucket.end(), msg.entries.begin(), msg.entries.end());
    // Forward the grown accumulation away from the sender.
    Accumulated grown = msg;
    grown.entries.push_back(RegionEntry{self, levels[self]});
    net.send(self, opposite(from), grown);
  };

  const auto max_rounds = static_cast<std::int64_t>(mesh.width()) + mesh.height() + 4;
  const ProtocolStats stats = loss != nullptr
                                  ? net.run_lossy(handler, lossy_rounds(max_rounds), *loss)
                                  : net.run(handler, max_rounds);

  DistributedRegionExchange result{
      Grid<std::vector<RegionEntry>>(mesh.width(), mesh.height()),
      Grid<std::vector<RegionEntry>>(mesh.width(), mesh.height()), stats, payload};
  mesh.for_each_node([&](Coord c) {
    if (obstacles[c]) return;
    result.row_peers[c] = net.state(c).row;
    result.col_peers[c] = net.state(c).col;
  });
  return result;
}

BroadcastResult broadcast_from(const Mesh2D& mesh, const Grid<bool>& obstacles,
                               Coord payload_origin, const LossConfig* loss) {
  SyncNetwork<std::uint8_t, std::uint8_t> net(mesh, &obstacles, 0);
  if (!net.active(payload_origin)) return BroadcastResult{0, net.stats()};

  net.state(payload_origin) = 1;
  for (const Direction d : kAllDirections) net.send(payload_origin, d, 0);

  std::int64_t reached = 1;
  const auto handler = [&](Coord self, std::uint8_t& seen, Direction /*from*/,
                           const std::uint8_t&) {
    if (seen) return;
    seen = true;
    ++reached;
    for (const Direction d : kAllDirections) net.send(self, d, 0);
  };
  const auto max_rounds = static_cast<std::int64_t>(mesh.width()) + mesh.height() + 4;
  const ProtocolStats stats = loss != nullptr
                                  ? net.run_lossy(handler, lossy_rounds(max_rounds), *loss)
                                  : net.run(handler, max_rounds);
  return BroadcastResult{reached, stats};
}

}  // namespace meshroute::simsub
