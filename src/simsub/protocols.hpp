// Distributed implementations of the paper's three information-distribution
// protocols, executed on the SyncNetwork substrate:
//
//   1. FORMATION-EXTENDED-SAFETY-LEVEL-INFORMATION (Section 4): directional
//      chains — a node bordering a block in direction d has level 0 there and
//      pushes its tuple away from the block; receivers add one and forward.
//   2. Boundary-line distribution (Section 2): block corner records travel
//      outward along the four adjacent lines, turning and joining when they
//      meet another block.
//   3. Pivot broadcast (Extension 3): a pivot floods its safety level to the
//      whole mesh.
//
// Each returns its result alongside ProtocolStats; integration tests assert
// the results equal the centralized computations in info/.
//
// Every protocol takes an optional LossConfig: when given, the execution
// runs over unreliable links (SyncNetwork::run_lossy) with drop/delay/
// duplication and ARQ retransmission, and the tests assert the protocols
// STILL converge to the centralized oracles — the chaos-hardening contract.
// A null LossConfig is the original reliable execution, bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/coord.hpp"
#include "common/grid.hpp"
#include "fault/block_model.hpp"
#include "info/safety_level.hpp"
#include "mesh/mesh2d.hpp"
#include "simsub/sync_network.hpp"

namespace meshroute::simsub {

/// Result of the distributed safety-level formation.
struct DistributedSafetyLevels {
  info::SafetyGrid levels;
  ProtocolStats stats;
};

/// Run the paper's formation protocol against an obstacle mask. Obstacle
/// nodes are inactive; their grid entries stay at the default (all infinite).
[[nodiscard]] DistributedSafetyLevels distributed_safety_levels(const Mesh2D& mesh,
                                                                const Grid<bool>& obstacles,
                                                                const LossConfig* loss = nullptr);

/// Result of the distributed boundary-information protocol: per node, block
/// ids known there.
struct DistributedBoundaryInfo {
  Grid<std::vector<std::int32_t>> known;
  ProtocolStats stats;
};

[[nodiscard]] DistributedBoundaryInfo distributed_boundary_info(const Mesh2D& mesh,
                                                                const fault::BlockSet& blocks,
                                                                const LossConfig* loss = nullptr);

/// Flood `payload_origin`'s record to every active node; returns how many
/// nodes were reached plus the traffic cost. Models a pivot broadcast.
struct BroadcastResult {
  std::int64_t reached = 0;
  ProtocolStats stats;
};

[[nodiscard]] BroadcastResult broadcast_from(const Mesh2D& mesh, const Grid<bool>& obstacles,
                                             Coord payload_origin,
                                             const LossConfig* loss = nullptr);

/// Extension 2's information exchange (Section 4): "Nodes along each
/// affected row (and affected column) exchange their extended safety levels
/// ... the exchange is within each region. A simple implementation starts
/// from two ends of each region and pushes the partially accumulated
/// information to the other end."
///
/// One entry another node in my region advertised to me.
struct RegionEntry {
  Coord node;
  info::ExtendedSafetyLevel level;

  friend bool operator==(const RegionEntry&, const RegionEntry&) = default;
};

/// Per node: the safety levels of every other node in its row region and
/// its column region (empty at nodes on unaffected rows/columns — they
/// never needed the exchange).
struct DistributedRegionExchange {
  Grid<std::vector<RegionEntry>> row_peers;
  Grid<std::vector<RegionEntry>> col_peers;
  ProtocolStats stats;
  std::int64_t payload_entries = 0;  ///< total levels carried across links
};

/// Run the two-end accumulation along every affected row and column.
/// `levels` must match `obstacles` (typically the output of
/// distributed_safety_levels or the centralized sweep).
[[nodiscard]] DistributedRegionExchange distributed_region_exchange(
    const Mesh2D& mesh, const Grid<bool>& obstacles, const info::SafetyGrid& levels,
    const LossConfig* loss = nullptr);

}  // namespace meshroute::simsub
