#include "hypercube/hypercube.hpp"

#include <algorithm>
#include <stdexcept>

namespace meshroute::cube {

Hypercube::Hypercube(int dimension) : n_(dimension) {
  if (dimension < 1 || dimension > 20) {
    throw std::invalid_argument("Hypercube dimension must be in [1, 20]");
  }
  faulty_.assign(node_count(), 0);
}

void Hypercube::set_faulty(NodeId u) {
  if (u >= node_count()) throw std::out_of_range("Hypercube::set_faulty");
  if (!faulty_[u]) {
    faulty_[u] = 1;
    ++fault_count_;
  }
}

std::vector<int> compute_safety_levels(const Hypercube& cube) {
  const int n = cube.dimension();
  const std::size_t count = cube.node_count();
  // Start from the optimistic assignment and decrease to the fixed point;
  // Wu shows convergence within n rounds.
  std::vector<int> level(count);
  for (std::size_t u = 0; u < count; ++u) level[u] = cube.faulty(static_cast<NodeId>(u)) ? 0 : n;

  std::vector<int> s(static_cast<std::size_t>(n));
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ <= n + 1) {
    changed = false;
    for (std::size_t u = 0; u < count; ++u) {
      if (cube.faulty(static_cast<NodeId>(u))) continue;
      for (int d = 0; d < n; ++d) {
        s[static_cast<std::size_t>(d)] = level[cube.neighbor(static_cast<NodeId>(u), d)];
      }
      std::sort(s.begin(), s.end());
      int k = 0;
      while (k < n && s[static_cast<std::size_t>(k)] >= k) ++k;
      if (k < level[u]) {
        level[u] = k;
        changed = true;
      }
    }
  }
  return level;
}

bool minimal_path_exists(const Hypercube& cube, NodeId s, NodeId d) {
  if (cube.faulty(s) || cube.faulty(d)) return false;
  const NodeId diff = s ^ d;
  const int dist = Hypercube::distance(s, d);
  if (dist == 0) return true;
  // Enumerate the dimensions to correct; DP over subsets in popcount order.
  std::vector<int> dims;
  for (int b = 0; b < cube.dimension(); ++b) {
    if (diff & (NodeId{1} << b)) dims.push_back(b);
  }
  const std::size_t subsets = std::size_t{1} << dims.size();
  std::vector<std::uint8_t> reach(subsets, 0);
  reach[0] = 1;
  // Iterate subsets grouped by size: any subset's node is reachable iff the
  // node is fault-free and some one-smaller subset is reachable.
  std::vector<std::vector<std::uint32_t>> by_size(dims.size() + 1);
  for (std::uint32_t m = 1; m < subsets; ++m) {
    by_size[static_cast<std::size_t>(__builtin_popcount(m))].push_back(m);
  }
  for (std::size_t size = 1; size <= dims.size(); ++size) {
    for (const std::uint32_t m : by_size[size]) {
      NodeId node = s;
      for (std::size_t i = 0; i < dims.size(); ++i) {
        if (m & (1u << i)) node ^= NodeId{1} << dims[i];
      }
      if (cube.faulty(node)) continue;
      for (std::size_t i = 0; i < dims.size(); ++i) {
        if ((m & (1u << i)) && reach[m ^ (1u << i)]) {
          reach[m] = 1;
          break;
        }
      }
    }
  }
  return reach[subsets - 1] != 0;
}

std::optional<std::vector<NodeId>> route_safety_level(const Hypercube& cube,
                                                      const std::vector<int>& levels, NodeId s,
                                                      NodeId d) {
  if (cube.faulty(s) || cube.faulty(d)) return std::nullopt;
  std::vector<NodeId> path{s};
  NodeId cur = s;
  while (cur != d) {
    const NodeId diff = cur ^ d;
    NodeId best = cur;
    int best_level = -1;
    for (int b = 0; b < cube.dimension(); ++b) {
      if (!(diff & (NodeId{1} << b))) continue;
      const NodeId v = cube.neighbor(cur, b);
      if (cube.faulty(v)) continue;
      // Prefer the highest-safety preferred neighbor; the destination
      // itself is always acceptable.
      const int lv = v == d ? cube.dimension() + 1 : levels[v];
      if (lv > best_level) {
        best_level = lv;
        best = v;
      }
    }
    if (best == cur) return std::nullopt;  // stuck: no usable preferred neighbor
    cur = best;
    path.push_back(cur);
  }
  return path;
}

void inject_random_faults(Hypercube& cube, std::size_t k, Rng& rng,
                          const std::vector<NodeId>& protect) {
  std::vector<NodeId> eligible;
  eligible.reserve(cube.node_count());
  for (NodeId u = 0; u < cube.node_count(); ++u) {
    if (std::find(protect.begin(), protect.end(), u) == protect.end()) eligible.push_back(u);
  }
  if (k > eligible.size()) throw std::invalid_argument("inject_random_faults: k too large");
  for (const auto idx : rng.sample_distinct(static_cast<std::int64_t>(eligible.size()),
                                            static_cast<std::int64_t>(k))) {
    cube.set_faulty(eligible[static_cast<std::size_t>(idx)]);
  }
}

}  // namespace meshroute::cube
