// Binary-hypercube safety levels — the concept the paper generalizes.
//
// Section 1: "in a binary hypercube, if a node's safety level is L, there is
// at least one Hamming distance (minimal) path from this node to any node
// within Hamming-distance-L" (Wu, IEEE ToC 46(2), 1997; TPDS 9(4), 1998).
// The 2-D mesh's extended safety level (E, S, W, N) is the directional
// refinement of this scalar. Implementing the original substrate both
// grounds the lineage and provides an independent minimal-routing theory to
// test the shared machinery against.
//
// Definition (Wu): the safety level of a faulty node is 0. For a non-faulty
// node u in an n-cube whose n neighbors have levels (s1 <= s2 <= ... <= sn)
// in non-decreasing order, S(u) = k where k is the largest value such that
// s_i >= i - 1 for every i <= k (equivalently: seq >= (0, 1, ..., k-1)),
// capped at n. Computed as a decreasing fixed point.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/coord.hpp"
#include "common/rng.hpp"

namespace meshroute::cube {

/// Node address: an n-bit string.
using NodeId = std::uint32_t;

/// An n-dimensional binary hypercube with a fault set.
class Hypercube {
 public:
  explicit Hypercube(int dimension);

  [[nodiscard]] int dimension() const noexcept { return n_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return std::size_t{1} << n_; }

  void set_faulty(NodeId u);
  [[nodiscard]] bool faulty(NodeId u) const { return faulty_[u]; }
  [[nodiscard]] std::size_t fault_count() const noexcept { return fault_count_; }

  /// Neighbor across dimension d (flip bit d).
  [[nodiscard]] NodeId neighbor(NodeId u, int d) const noexcept {
    return u ^ (NodeId{1} << d);
  }

  /// Hamming distance.
  [[nodiscard]] static int distance(NodeId a, NodeId b) noexcept {
    return __builtin_popcount(a ^ b);
  }

 private:
  int n_;
  std::vector<std::uint8_t> faulty_;
  std::size_t fault_count_ = 0;

  friend std::vector<int> compute_safety_levels(const Hypercube&);
};

/// Wu's safety levels, run to the (decreasing) fixed point. O(iterations *
/// nodes * n log n); converges in at most n rounds.
[[nodiscard]] std::vector<int> compute_safety_levels(const Hypercube& cube);

/// Oracle: does a Hamming-minimal path from s to d exist avoiding faulty
/// nodes? DP over the subcube spanned by s ^ d (O(2^distance * distance)).
[[nodiscard]] bool minimal_path_exists(const Hypercube& cube, NodeId s, NodeId d);

/// Wu's safety-level routing: at each hop take a preferred neighbor (one
/// correcting a differing bit) with the maximum safety level. Guaranteed
/// minimal when S(source) >= distance or some preferred neighbor has
/// S >= distance - 1. Returns the hop sequence (including endpoints) or
/// nullopt if it gets stuck.
[[nodiscard]] std::optional<std::vector<NodeId>> route_safety_level(
    const Hypercube& cube, const std::vector<int>& levels, NodeId s, NodeId d);

/// Uniform random fault injection (never the given protected nodes).
void inject_random_faults(Hypercube& cube, std::size_t k, Rng& rng,
                          const std::vector<NodeId>& protect = {});

}  // namespace meshroute::cube
