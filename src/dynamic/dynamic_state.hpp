// Incremental fault-information maintenance — Section 1's scalability claim
// made executable: "When a disturbance occurs, only those affected nodes
// update their information to keep it consistent."
//
// DynamicMeshState keeps the faulty-block set and the extended-safety-level
// grid up to date across single-fault injections, touching only:
//   * the nodes relabeled by the (monotone) disable rule around the fault,
//   * the blocks absorbed into the grown block, and
//   * the rows/columns whose obstacle population changed (only their lines
//     of the safety grid are re-swept).
// Consistency with a from-scratch rebuild is asserted by the test-suite
// after every injection; UpdateStats quantifies how little work each
// disturbance costs (the figure behind the "converges quickly" argument).
#pragma once

#include <cstdint>
#include <vector>

#include "common/coord.hpp"
#include "common/grid.hpp"
#include "common/rect.hpp"
#include "fault/fault_set.hpp"
#include "info/safety_level.hpp"
#include "mesh/mesh2d.hpp"

namespace meshroute::dynamic {

/// Work performed by one incremental update.
struct UpdateStats {
  std::int64_t relabeled_nodes = 0;   ///< nodes newly added to blocks
  std::int64_t absorbed_blocks = 0;   ///< pre-existing blocks merged away
  std::int64_t rows_resweeped = 0;    ///< safety-grid rows recomputed
  std::int64_t cols_resweeped = 0;    ///< safety-grid columns recomputed
};

/// Mutable mesh fault state with incremental derived-information updates.
/// Owns a copy of the mesh descriptor (it is two integers), so temporaries
/// are safe to pass.
class DynamicMeshState {
 public:
  explicit DynamicMeshState(Mesh2D mesh);

  /// Inject one fault and update blocks + safety levels incrementally.
  /// Injecting an already-faulty or block-interior node is a cheap no-op
  /// for the block structure (the node was already disabled).
  UpdateStats inject_fault(Coord c);

  [[nodiscard]] const Mesh2D& mesh() const noexcept { return mesh_; }
  [[nodiscard]] const fault::FaultSet& faults() const noexcept { return faults_; }

  /// Current disjoint faulty blocks (unordered).
  [[nodiscard]] const std::vector<Rect>& blocks() const noexcept { return blocks_; }

  /// Block-node mask (faulty + disabled).
  [[nodiscard]] const Grid<bool>& obstacle_mask() const noexcept { return bad_; }

  /// Extended safety levels, maintained incrementally.
  [[nodiscard]] const info::SafetyGrid& safety() const noexcept { return safety_; }

  /// The exact set of nodes the last inject_fault flipped from good to bad
  /// (faulty, relabeled, and rectangle-filled cells alike; empty for no-op
  /// injections). This is the injection's epoch delta — consumers that
  /// mirror per-node becomes-bad state (e.g. chaos::ChaosEngine's bad-since
  /// stamps) update from it in O(|delta|) instead of re-scanning the mesh.
  [[nodiscard]] const std::vector<Coord>& last_changed() const noexcept { return changed_; }

 private:
  /// Re-run the disable rule from a seed neighborhood; returns newly-bad
  /// nodes (monotone, so the incremental fixed point equals the global one).
  std::vector<Coord> propagate_from(const std::vector<Coord>& seeds);

  /// Close the block containing the changed cells to a rectangle, absorbing
  /// overlapped blocks, until stable. Appends every cell that became bad to
  /// `changed`.
  void rebuild_block_around(std::vector<Coord>& changed, UpdateStats& stats);

  /// Re-sweep the safety-grid lines crossing the changed cells.
  void resweep_lines(const std::vector<Coord>& changed, UpdateStats& stats);

  Mesh2D mesh_;
  fault::FaultSet faults_;
  Grid<bool> bad_;
  std::vector<Rect> blocks_;
  info::SafetyGrid safety_;
  std::vector<Coord> changed_;               ///< last injection's epoch delta
  std::vector<std::uint64_t> row_dirty_;     ///< resweep_lines scratch bitsets
  std::vector<std::uint64_t> col_dirty_;
};

}  // namespace meshroute::dynamic
