#include "dynamic/dynamic_state.hpp"

#include <bit>
#include <deque>

namespace meshroute::dynamic {
namespace {

/// Definition 1's disable test against a mutable bad mask.
bool disable_condition(const Mesh2D& mesh, const Grid<bool>& bad, Coord c) {
  const auto bad_at = [&](Coord v) { return mesh.in_bounds(v) && bad[v]; };
  const bool horiz = bad_at(neighbor(c, Direction::East)) || bad_at(neighbor(c, Direction::West));
  const bool vert = bad_at(neighbor(c, Direction::North)) || bad_at(neighbor(c, Direction::South));
  return horiz && vert;
}

}  // namespace

DynamicMeshState::DynamicMeshState(Mesh2D mesh)
    : mesh_(mesh), faults_(mesh_), bad_(mesh_.width(), mesh_.height(), false),
      safety_(mesh_.width(), mesh_.height()) {}

std::vector<Coord> DynamicMeshState::propagate_from(const std::vector<Coord>& seeds) {
  // The disable rule is monotone, so seeding the worklist with the enabled
  // neighbors of the changed cells reaches exactly the global fixed point.
  std::deque<Coord> work;
  for (const Coord s : seeds) {
    for (const Coord v : mesh_.neighbors(s)) {
      if (!bad_[v]) work.push_back(v);
    }
  }
  std::vector<Coord> newly;
  while (!work.empty()) {
    const Coord c = work.front();
    work.pop_front();
    if (bad_[c] || !disable_condition(mesh_, bad_, c)) continue;
    bad_[c] = true;
    newly.push_back(c);
    for (const Coord v : mesh_.neighbors(c)) {
      if (!bad_[v]) work.push_back(v);
    }
  }
  return newly;
}

void DynamicMeshState::rebuild_block_around(std::vector<Coord>& changed, UpdateStats& stats) {
  // Bounding box of the (single) component containing the changed cells.
  Rect box;
  {
    Grid<bool> seen(mesh_.width(), mesh_.height(), false);
    std::deque<Coord> frontier;
    for (const Coord c : changed) {
      if (!seen[c]) {
        seen[c] = true;
        frontier.push_back(c);
      }
    }
    while (!frontier.empty()) {
      const Coord c = frontier.front();
      frontier.pop_front();
      box = box.united(c);
      for (const Coord v : mesh_.neighbors(c)) {
        if (bad_[v] && !seen[v]) {
          seen[v] = true;
          frontier.push_back(v);
        }
      }
    }
  }
  if (!box.valid()) return;

  // Absorb overlapped blocks, fill to the rectangle, re-propagate; repeat
  // until stable (the incremental version of build_faulty_blocks' closure).
  bool grew = true;
  while (grew) {
    grew = false;
    for (std::size_t i = 0; i < blocks_.size();) {
      if (blocks_[i].overlaps(box)) {
        box = box.united(blocks_[i]);
        blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(i));
        ++stats.absorbed_blocks;
        grew = true;
      } else {
        ++i;
      }
    }
    std::vector<Coord> filled;
    for (Dist y = box.ymin; y <= box.ymax; ++y) {
      for (Dist x = box.xmin; x <= box.xmax; ++x) {
        if (!bad_[{x, y}]) {
          bad_[{x, y}] = true;
          filled.push_back({x, y});
        }
      }
    }
    if (!filled.empty()) {
      grew = true;
      for (const Coord c : filled) changed.push_back(c);
      const std::vector<Coord> cascaded = propagate_from(filled);
      for (const Coord c : cascaded) {
        box = box.united(c);
        changed.push_back(c);
      }
    }
  }
  stats.relabeled_nodes += static_cast<std::int64_t>(changed.size());
  blocks_.push_back(box);
}

void DynamicMeshState::resweep_lines(const std::vector<Coord>& changed, UpdateStats& stats) {
  // Dirty-line bitsets instead of ordered sets: marking is one OR per cell,
  // and the word scan below visits lines in the same ascending order.
  const Dist w = mesh_.width();
  const Dist h = mesh_.height();
  row_dirty_.assign((static_cast<std::size_t>(h) + 63) / 64, 0);
  col_dirty_.assign((static_cast<std::size_t>(w) + 63) / 64, 0);
  for (const Coord c : changed) {
    row_dirty_[static_cast<std::size_t>(c.y) >> 6] |= std::uint64_t{1} << (c.y & 63);
    col_dirty_[static_cast<std::size_t>(c.x) >> 6] |= std::uint64_t{1} << (c.x & 63);
  }
  const auto chain = [&](bool obstacle, Dist v) {
    if (obstacle) return Dist{0};
    return is_infinite(v) ? kInfiniteDistance : v + 1;
  };
  const auto for_each_dirty = [](const std::vector<std::uint64_t>& dirty, auto&& fn) {
    for (std::size_t j = 0; j < dirty.size(); ++j) {
      for (std::uint64_t m = dirty[j]; m != 0; m &= m - 1) {
        fn(static_cast<Dist>(j * 64 + static_cast<std::size_t>(std::countr_zero(m))));
      }
    }
  };
  for_each_dirty(row_dirty_, [&](Dist y) {
    safety_[{w - 1, y}].e = kInfiniteDistance;
    for (Dist x = w - 2; x >= 0; --x) {
      safety_[{x, y}].e = chain(bad_[{x + 1, y}], safety_[{x + 1, y}].e);
    }
    safety_[{0, y}].w = kInfiniteDistance;
    for (Dist x = 1; x < w; ++x) {
      safety_[{x, y}].w = chain(bad_[{x - 1, y}], safety_[{x - 1, y}].w);
    }
    ++stats.rows_resweeped;
  });
  for_each_dirty(col_dirty_, [&](Dist x) {
    safety_[{x, h - 1}].n = kInfiniteDistance;
    for (Dist y = h - 2; y >= 0; --y) {
      safety_[{x, y}].n = chain(bad_[{x, y + 1}], safety_[{x, y + 1}].n);
    }
    safety_[{x, 0}].s = kInfiniteDistance;
    for (Dist y = 1; y < h; ++y) {
      safety_[{x, y}].s = chain(bad_[{x, y - 1}], safety_[{x, y - 1}].s);
    }
    ++stats.cols_resweeped;
  });
}

UpdateStats DynamicMeshState::inject_fault(Coord c) {
  UpdateStats stats;
  changed_.clear();
  if (faults_.contains(c)) return stats;
  faults_.add(c);
  if (bad_[c]) return stats;  // was a disabled block node; structure unchanged

  bad_[c] = true;
  changed_.push_back(c);
  const std::vector<Coord> cascaded = propagate_from(changed_);
  changed_.insert(changed_.end(), cascaded.begin(), cascaded.end());
  rebuild_block_around(changed_, stats);
  resweep_lines(changed_, stats);
  return stats;
}

}  // namespace meshroute::dynamic
