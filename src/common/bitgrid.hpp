// Bit-plane representation of a boolean node grid: one uint64_t word per 64
// columns, row-major, with word-parallel row operations. The trial hot path
// (block/MCC fixpoints, safety sweeps, the reachability oracle) runs on these
// planes — a dense-grid fixpoint step touches width/64 words per row instead
// of width bytes, and directional run propagation collapses to Kogge-Stone
// occluded fills.
//
// Layout invariants (DESIGN §10):
//   * bit x of word row[x / 64] is column x (LSB = west, MSB = east, so a
//     left shift moves bits EAST and a right shift moves them WEST);
//   * every row owns words_per_row() words; the unused high bits of the last
//     word ("tail") are ZERO. Every member op and row helper preserves this —
//     it is what makes whole-row popcounts/or/and and the fills edge-exact.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/coord.hpp"
#include "common/grid.hpp"

namespace meshroute::core {

/// Dense bit plane over [0,width) x [0,height), value-semantic like Grid<T>.
class BitGrid {
 public:
  BitGrid() = default;
  BitGrid(Dist width, Dist height) { resize(width, height); }

  /// Extra zero words allocated past the last row so SIMD kernels may issue
  /// full-vector loads/stores at any in-row word index. The padding is part
  /// of the tail-bit invariant: it is zero after resize() and every kernel's
  /// masked tail store preserves it (asserted by tests/test_simd.cpp).
  static constexpr std::size_t kRowPad = 7;

  /// Rebind to new dimensions and zero every bit; reuses capacity, so
  /// steady-state reshapes to the same size allocate nothing.
  void resize(Dist width, Dist height) {
    assert(width >= 0 && height >= 0);
    width_ = width;
    height_ = height;
    wpr_ = (static_cast<std::size_t>(width) + 63) / 64;
    const int tail_bits = static_cast<int>(static_cast<std::size_t>(width) - 64 * (wpr_ - 1));
    tail_ = width == 0 ? 0 : (tail_bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail_bits) - 1);
    words_.assign(wpr_ * static_cast<std::size_t>(height) + kRowPad, 0);
  }

  [[nodiscard]] Dist width() const noexcept { return width_; }
  [[nodiscard]] Dist height() const noexcept { return height_; }
  [[nodiscard]] std::size_t words_per_row() const noexcept { return wpr_; }
  /// Valid-bit mask of the last word of every row.
  [[nodiscard]] std::uint64_t tail_mask() const noexcept { return tail_; }

  void clear() { std::memset(words_.data(), 0, words_.size() * sizeof(std::uint64_t)); }

  [[nodiscard]] bool test(Coord c) const noexcept {
    assert(in_bounds(c));
    return (row(c.y)[static_cast<std::size_t>(c.x) >> 6] >> (c.x & 63)) & 1;
  }
  void set(Coord c) noexcept {
    assert(in_bounds(c));
    row(c.y)[static_cast<std::size_t>(c.x) >> 6] |= std::uint64_t{1} << (c.x & 63);
  }
  void reset(Coord c) noexcept {
    assert(in_bounds(c));
    row(c.y)[static_cast<std::size_t>(c.x) >> 6] &= ~(std::uint64_t{1} << (c.x & 63));
  }

  [[nodiscard]] bool in_bounds(Coord c) const noexcept {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
  }

  [[nodiscard]] std::uint64_t* row(Dist y) noexcept {
    assert(y >= 0 && y < height_);
    return words_.data() + static_cast<std::size_t>(y) * wpr_;
  }
  [[nodiscard]] const std::uint64_t* row(Dist y) const noexcept {
    assert(y >= 0 && y < height_);
    return words_.data() + static_cast<std::size_t>(y) * wpr_;
  }

  [[nodiscard]] std::int64_t popcount() const noexcept {
    std::int64_t n = 0;
    for (const std::uint64_t w : words_) n += std::popcount(w);
    return n;
  }
  [[nodiscard]] bool any() const noexcept {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Pack a byte grid (any nonzero byte reads as true). Resizes to match.
  void assign(const Grid<bool>& g);
  /// Unpack into a byte grid of 0/1 cells (resized on dimension mismatch).
  void unpack(Grid<bool>& g) const;
  /// out[{y, x}] = (*this)[{x, y}]; out is resized to (height, width).
  void transpose_into(BitGrid& out) const;

  /// Visit set bits of one row word array in ascending x. `fn(Dist x)`.
  template <typename Fn>
  static void for_each_set_in_row(const std::uint64_t* r, std::size_t nw, Fn&& fn) {
    for (std::size_t j = 0; j < nw; ++j) {
      std::uint64_t m = r[j];
      while (m != 0) {
        const int b = std::countr_zero(m);
        fn(static_cast<Dist>(j * 64 + static_cast<std::size_t>(b)));
        m &= m - 1;
      }
    }
  }

  /// Visit every set bit in row-major order. `fn(Coord)`.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (Dist y = 0; y < height_; ++y) {
      for_each_set_in_row(row(y), wpr_, [&](Dist x) { fn(Coord{x, y}); });
    }
  }

  friend bool operator==(const BitGrid&, const BitGrid&) = default;

 private:
  Dist width_ = 0;
  Dist height_ = 0;
  std::size_t wpr_ = 0;
  std::uint64_t tail_ = 0;
  std::vector<std::uint64_t> words_;
};

// ---------------------------------------------------------------------------
// Word-row helpers. All take word arrays of length `nw` whose tail bits are
// zero and preserve that invariant (shift_east_row masks with `tail`).
// `dst` may alias `src`/`seed`, never `allowed`.
// ---------------------------------------------------------------------------

/// dst = src shifted one column EAST (x+1), carrying across word boundaries.
inline void shift_east_row(const std::uint64_t* src, std::uint64_t* dst, std::size_t nw,
                           std::uint64_t tail) noexcept {
  for (std::size_t j = nw; j-- > 0;) {
    dst[j] = (src[j] << 1) | (j > 0 ? src[j - 1] >> 63 : 0);
  }
  if (nw > 0) dst[nw - 1] &= tail;
}

/// dst = src shifted one column WEST (x-1), carrying across word boundaries.
inline void shift_west_row(const std::uint64_t* src, std::uint64_t* dst,
                           std::size_t nw) noexcept {
  for (std::size_t j = 0; j < nw; ++j) {
    dst[j] = (src[j] >> 1) | (j + 1 < nw ? src[j + 1] << 63 : 0);
  }
}

/// Kogge-Stone occluded fill within one word, toward the MSB (east).
[[nodiscard]] inline std::uint64_t word_fill_east(std::uint64_t gen, std::uint64_t pro) noexcept {
  gen |= pro & (gen << 1);
  pro &= pro << 1;
  gen |= pro & (gen << 2);
  pro &= pro << 2;
  gen |= pro & (gen << 4);
  pro &= pro << 4;
  gen |= pro & (gen << 8);
  pro &= pro << 8;
  gen |= pro & (gen << 16);
  pro &= pro << 16;
  gen |= pro & (gen << 32);
  return gen;
}

/// Kogge-Stone occluded fill within one word, toward the LSB (west).
[[nodiscard]] inline std::uint64_t word_fill_west(std::uint64_t gen, std::uint64_t pro) noexcept {
  gen |= pro & (gen >> 1);
  pro &= pro >> 1;
  gen |= pro & (gen >> 2);
  pro &= pro >> 2;
  gen |= pro & (gen >> 4);
  pro &= pro >> 4;
  gen |= pro & (gen >> 8);
  pro &= pro >> 8;
  gen |= pro & (gen >> 16);
  pro &= pro >> 16;
  gen |= pro & (gen >> 32);
  return gen;
}

/// out = every bit of `allowed` reachable from seed & allowed by repeated
/// +x steps through contiguous allowed bits (seeds outside `allowed` are
/// dropped). Six doubling steps per word plus a sequential carry east.
inline void fill_east_row(const std::uint64_t* seed, const std::uint64_t* allowed,
                          std::uint64_t* out, std::size_t nw) noexcept {
  std::uint64_t carry = 0;
  for (std::size_t j = 0; j < nw; ++j) {
    const std::uint64_t f = word_fill_east((seed[j] | carry) & allowed[j], allowed[j]);
    out[j] = f;
    carry = f >> 63;
  }
}

/// Mirror of fill_east_row: repeated -x steps, carry toward the west.
inline void fill_west_row(const std::uint64_t* seed, const std::uint64_t* allowed,
                          std::uint64_t* out, std::size_t nw) noexcept {
  std::uint64_t carry = 0;
  for (std::size_t j = nw; j-- > 0;) {
    const std::uint64_t f = word_fill_west((seed[j] | carry) & allowed[j], allowed[j]);
    out[j] = f;
    carry = (f & 1) << 63;
  }
}

/// Population count of row bits x in [x0, x1] (inclusive).
[[nodiscard]] inline std::int64_t row_range_popcount(const std::uint64_t* r, Dist x0,
                                                     Dist x1) noexcept {
  if (x1 < x0) return 0;
  const std::size_t j0 = static_cast<std::size_t>(x0) >> 6;
  const std::size_t j1 = static_cast<std::size_t>(x1) >> 6;
  const std::uint64_t lo = ~std::uint64_t{0} << (x0 & 63);
  const std::uint64_t hi = ~std::uint64_t{0} >> (63 - (x1 & 63));
  if (j0 == j1) return std::popcount(r[j0] & lo & hi);
  std::int64_t n = std::popcount(r[j0] & lo) + std::popcount(r[j1] & hi);
  for (std::size_t j = j0 + 1; j < j1; ++j) n += std::popcount(r[j]);
  return n;
}

/// Set row bits x in [x0, x1] (inclusive).
inline void row_range_set(std::uint64_t* r, Dist x0, Dist x1) noexcept {
  if (x1 < x0) return;
  const std::size_t j0 = static_cast<std::size_t>(x0) >> 6;
  const std::size_t j1 = static_cast<std::size_t>(x1) >> 6;
  const std::uint64_t lo = ~std::uint64_t{0} << (x0 & 63);
  const std::uint64_t hi = ~std::uint64_t{0} >> (63 - (x1 & 63));
  if (j0 == j1) {
    r[j0] |= lo & hi;
    return;
  }
  r[j0] |= lo;
  for (std::size_t j = j0 + 1; j < j1; ++j) r[j] = ~std::uint64_t{0};
  r[j1] |= hi;
}

}  // namespace meshroute::core
