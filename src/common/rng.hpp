// Deterministic random source for fault injection and workload generation.
// Every experiment in the repository is seeded, so paper figures regenerate
// bit-identically run to run.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace meshroute {

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche, the
/// standard generator for deriving independent seeds from a counter.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fold one component into a stream seed (seed-splitting). Chaining
/// `seed_combine` over (base, k, trial, ...) yields pairwise-independent
/// seeds for every grid cell of a sweep — never a shared stream, so cells
/// can run on any thread in any order with identical results.
[[nodiscard]] constexpr std::uint64_t seed_combine(std::uint64_t seed,
                                                  std::uint64_t component) noexcept {
  return splitmix64(seed ^ splitmix64(component));
}

/// Thin deterministic wrapper over mt19937_64 with the handful of draws the
/// simulators need. Copyable so a trial can fork an independent stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) { return uniform01() < p; }

  /// k distinct integers sampled uniformly from [0, n) via partial
  /// Fisher-Yates; O(k) memory beyond the index pool.
  [[nodiscard]] std::vector<std::int64_t> sample_distinct(std::int64_t n, std::int64_t k) {
    std::vector<std::int64_t> pool;
    std::vector<std::int64_t> out;
    sample_distinct(n, k, pool, out);
    return out;
  }

  /// In-place variant for hot loops: `pool` and `out` are caller-owned
  /// scratch whose capacity is reused across calls. The draw sequence is
  /// identical to the allocating overload (it depends only on n and k), so
  /// the two produce the same sample from the same engine state.
  void sample_distinct(std::int64_t n, std::int64_t k, std::vector<std::int64_t>& pool,
                       std::vector<std::int64_t>& out) {
    if (k < 0 || k > n) throw std::invalid_argument("Rng::sample_distinct: k out of range");
    pool.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
    out.clear();
    out.reserve(static_cast<std::size_t>(k));
    for (std::int64_t i = 0; i < k; ++i) {
      const auto j = uniform(i, n - 1);
      std::swap(pool[static_cast<std::size_t>(i)], pool[static_cast<std::size_t>(j)]);
      out.push_back(pool[static_cast<std::size_t>(i)]);
    }
  }

  /// Derive an independent child stream (for per-trial determinism no matter
  /// how many draws earlier trials consumed).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Access for std distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace meshroute
