// Deterministic random source for fault injection and workload generation.
// Every experiment in the repository is seeded, so paper figures regenerate
// bit-identically run to run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace meshroute {

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche, the
/// standard generator for deriving independent seeds from a counter.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fold one component into a stream seed (seed-splitting). Chaining
/// `seed_combine` over (base, k, trial, ...) yields pairwise-independent
/// seeds for every grid cell of a sweep — never a shared stream, so cells
/// can run on any thread in any order with identical results.
[[nodiscard]] constexpr std::uint64_t seed_combine(std::uint64_t seed,
                                                  std::uint64_t component) noexcept {
  return splitmix64(seed ^ splitmix64(component));
}

/// Epoch-stamped open-addressing map of displaced Fisher-Yates entries for
/// Rng::sample_distinct_sparse: a call touches O(k) slots, and bumping the
/// epoch invalidates them all without clearing, so steady-state sampling
/// does no O(n) work at all.
struct SparseSampleScratch {
  std::vector<std::int64_t> keys;
  std::vector<std::int64_t> vals;
  std::vector<std::uint32_t> stamps;
  std::uint32_t epoch = 0;
};

/// Thin deterministic wrapper over mt19937_64 with the handful of draws the
/// simulators need. Copyable so a trial can fork an independent stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) { return uniform01() < p; }

  /// k distinct integers sampled uniformly from [0, n) via partial
  /// Fisher-Yates; O(k) memory beyond the index pool.
  [[nodiscard]] std::vector<std::int64_t> sample_distinct(std::int64_t n, std::int64_t k) {
    std::vector<std::int64_t> pool;
    std::vector<std::int64_t> out;
    sample_distinct(n, k, pool, out);
    return out;
  }

  /// In-place variant for hot loops: `pool` and `out` are caller-owned
  /// scratch whose capacity is reused across calls. The draw sequence is
  /// identical to the allocating overload (it depends only on n and k), so
  /// the two produce the same sample from the same engine state.
  void sample_distinct(std::int64_t n, std::int64_t k, std::vector<std::int64_t>& pool,
                       std::vector<std::int64_t>& out) {
    if (k < 0 || k > n) throw std::invalid_argument("Rng::sample_distinct: k out of range");
    pool.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
    out.clear();
    out.reserve(static_cast<std::size_t>(k));
    for (std::int64_t i = 0; i < k; ++i) {
      const auto j = uniform(i, n - 1);
      std::swap(pool[static_cast<std::size_t>(i)], pool[static_cast<std::size_t>(j)]);
      out.push_back(pool[static_cast<std::size_t>(i)]);
    }
  }

  /// Sparse partial Fisher-Yates: DRAW-IDENTICAL to sample_distinct (the
  /// same k uniform(i, n-1) calls, the same sample) but O(k) time and memory
  /// instead of O(n) — the virtual pool "index i holds i" is materialized
  /// only at the O(k) displaced positions, kept in an epoch-stamped hash map
  /// so repeated calls never pay an O(n) clear. The swap pool[i] <-> pool[j]
  /// becomes: emit map_get(j), then map_put(j, map_get(i)); position i is
  /// never read again, so its half of the swap is dropped.
  void sample_distinct_sparse(std::int64_t n, std::int64_t k, SparseSampleScratch& s,
                              std::vector<std::int64_t>& out) {
    if (k < 0 || k > n) {
      throw std::invalid_argument("Rng::sample_distinct_sparse: k out of range");
    }
    std::size_t cap = 16;
    while (cap < static_cast<std::size_t>(k) * 2) cap <<= 1;
    if (s.stamps.size() != cap) {
      s.keys.assign(cap, 0);
      s.vals.assign(cap, 0);
      s.stamps.assign(cap, 0);
      s.epoch = 0;
    }
    if (++s.epoch == 0) {  // stamp wrap: one real clear every 2^32 calls
      std::fill(s.stamps.begin(), s.stamps.end(), 0);
      s.epoch = 1;
    }
    const std::size_t mask = cap - 1;
    const auto find_slot = [&](std::int64_t key) {
      std::size_t h = static_cast<std::size_t>(
                          splitmix64(static_cast<std::uint64_t>(key))) &
                      mask;
      while (s.stamps[h] == s.epoch && s.keys[h] != key) h = (h + 1) & mask;
      return h;
    };
    const auto get = [&](std::int64_t idx) {
      const std::size_t h = find_slot(idx);
      return s.stamps[h] == s.epoch ? s.vals[h] : idx;
    };
    out.clear();
    out.reserve(static_cast<std::size_t>(k));
    for (std::int64_t i = 0; i < k; ++i) {
      const auto j = uniform(i, n - 1);
      const std::int64_t vj = get(j);
      const std::int64_t vi = get(i);
      const std::size_t h = find_slot(j);
      s.keys[h] = j;
      s.vals[h] = vi;
      s.stamps[h] = s.epoch;
      out.push_back(vj);
    }
  }

  /// Derive an independent child stream (for per-trial determinism no matter
  /// how many draws earlier trials consumed).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Access for std distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace meshroute
