// Geometry primitives for 2-D mesh routing: coordinates, directions, and
// hop-distance arithmetic. All coordinates are signed so that relative frames
// (source-at-origin, as the paper writes them) need no special casing.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <string>

namespace meshroute {

/// Hop distances. Signed so differences are representable.
using Dist = std::int32_t;

/// Sentinel for "no faulty block in this direction" — the paper's infinite
/// safety level. Chosen far below INT32_MAX so that `kInfiniteDistance + small`
/// never overflows in comparisons.
inline constexpr Dist kInfiniteDistance = std::numeric_limits<Dist>::max() / 4;

/// True when a distance value represents the infinite sentinel (or beyond).
[[nodiscard]] constexpr bool is_infinite(Dist d) noexcept { return d >= kInfiniteDistance; }

/// The four mesh directions, in the paper's (E, S, W, N) tuple order.
enum class Direction : std::uint8_t { East = 0, South = 1, West = 2, North = 3 };

inline constexpr std::array<Direction, 4> kAllDirections = {
    Direction::East, Direction::South, Direction::West, Direction::North};

/// Opposite direction (East <-> West, North <-> South).
[[nodiscard]] constexpr Direction opposite(Direction d) noexcept {
  switch (d) {
    case Direction::East: return Direction::West;
    case Direction::South: return Direction::North;
    case Direction::West: return Direction::East;
    case Direction::North: return Direction::South;
  }
  return Direction::East;  // unreachable
}

/// True for East/West.
[[nodiscard]] constexpr bool is_horizontal(Direction d) noexcept {
  return d == Direction::East || d == Direction::West;
}

/// Short name ("E", "S", "W", "N").
[[nodiscard]] const char* to_string(Direction d) noexcept;

/// A node address (x, y) in a 2-D mesh, or a relative offset.
/// x grows eastward, y grows northward (the paper's axes).
struct Coord {
  Dist x = 0;
  Dist y = 0;

  friend constexpr auto operator<=>(const Coord&, const Coord&) = default;

  constexpr Coord operator+(const Coord& o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Coord operator-(const Coord& o) const noexcept { return {x - o.x, y - o.y}; }
};

/// Unit step in a direction.
[[nodiscard]] constexpr Coord step(Direction d) noexcept {
  switch (d) {
    case Direction::East: return {1, 0};
    case Direction::South: return {0, -1};
    case Direction::West: return {-1, 0};
    case Direction::North: return {0, 1};
  }
  return {0, 0};  // unreachable
}

/// Neighbor of `c` one hop in direction `d`.
[[nodiscard]] constexpr Coord neighbor(Coord c, Direction d) noexcept { return c + step(d); }

/// Manhattan (hop) distance — the paper's D(s, d) = |xd-xs| + |yd-ys|.
[[nodiscard]] constexpr Dist manhattan(Coord a, Coord b) noexcept {
  const Dist dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const Dist dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

/// "(x, y)" rendering for diagnostics.
[[nodiscard]] std::string to_string(Coord c);

std::ostream& operator<<(std::ostream& os, Coord c);
std::ostream& operator<<(std::ostream& os, Direction d);

/// The quadrant of `d` relative to `s`, following the paper: quadrant I is
/// north-east (xd >= xs, yd >= ys). Ties (shared row/column) are folded into
/// the quadrant whose both moves are still non-strictly preferred, favoring
/// I, then II, then III, then IV — callers that care about degenerate
/// same-row/column routing handle it explicitly.
enum class Quadrant : std::uint8_t { I = 0, II = 1, III = 2, IV = 3 };

[[nodiscard]] constexpr Quadrant quadrant_of(Coord s, Coord d) noexcept {
  const bool east = d.x >= s.x;
  const bool north = d.y >= s.y;
  if (east && north) return Quadrant::I;
  if (!east && north) return Quadrant::II;
  if (!east && !north) return Quadrant::III;
  return Quadrant::IV;
}

/// The two preferred directions toward quadrant `q` (x-dimension move first).
[[nodiscard]] constexpr std::array<Direction, 2> preferred_directions(Quadrant q) noexcept {
  switch (q) {
    case Quadrant::I: return {Direction::East, Direction::North};
    case Quadrant::II: return {Direction::West, Direction::North};
    case Quadrant::III: return {Direction::West, Direction::South};
    case Quadrant::IV: return {Direction::East, Direction::South};
  }
  return {Direction::East, Direction::North};  // unreachable
}

}  // namespace meshroute

template <>
struct std::hash<meshroute::Coord> {
  std::size_t operator()(const meshroute::Coord& c) const noexcept {
    // 2-D coordinates are small; pack into one 64-bit word and mix.
    const auto packed = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x)) << 32) |
                        static_cast<std::uint32_t>(c.y);
    return std::hash<std::uint64_t>{}(packed);
  }
};
