// Dense row-major 2-D array keyed by Coord. The workhorse container for node
// state (fault labels, safety levels, boundary info indices).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "common/coord.hpp"

namespace meshroute {

/// Fixed-size dense grid of T, indexed by Coord in [0,width) x [0,height).
/// Value-semantic; copying a Grid copies the whole plane.
///
/// bool is stored as uint8_t internally (std::vector<bool> has no addressable
/// elements); accessors hand out uint8_t references, which behave as booleans
/// at every call site.
template <typename T>
class Grid {
 public:
  /// Element type actually stored (uint8_t for bool).
  using Cell = std::conditional_t<std::is_same_v<T, bool>, std::uint8_t, T>;

  Grid() = default;

  Grid(Dist width, Dist height, const T& fill = T{})
      : width_(width), height_(height),
        cells_(static_cast<std::size_t>(width > 0 ? width : 0) *
                   static_cast<std::size_t>(height > 0 ? height : 0),
               static_cast<Cell>(fill)) {
    if (width <= 0 || height <= 0) throw std::invalid_argument("Grid dimensions must be positive");
  }

  [[nodiscard]] Dist width() const noexcept { return width_; }
  [[nodiscard]] Dist height() const noexcept { return height_; }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cells_.empty(); }

  [[nodiscard]] bool in_bounds(Coord c) const noexcept {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
  }

  /// Unchecked access (asserted in debug builds).
  [[nodiscard]] Cell& operator[](Coord c) noexcept {
    assert(in_bounds(c));
    return cells_[index(c)];
  }
  [[nodiscard]] const Cell& operator[](Coord c) const noexcept {
    assert(in_bounds(c));
    return cells_[index(c)];
  }

  /// Checked access.
  [[nodiscard]] Cell& at(Coord c) {
    if (!in_bounds(c)) throw std::out_of_range("Grid::at " + to_string(c));
    return cells_[index(c)];
  }
  [[nodiscard]] const Cell& at(Coord c) const {
    if (!in_bounds(c)) throw std::out_of_range("Grid::at " + to_string(c));
    return cells_[index(c)];
  }

  void fill(const T& value) { cells_.assign(cells_.size(), static_cast<Cell>(value)); }

  /// Raw storage, row-major by y then x (useful for bulk statistics and for
  /// the hot-path kernels that walk whole rows through raw pointers).
  [[nodiscard]] const std::vector<Cell>& data() const noexcept { return cells_; }
  [[nodiscard]] std::vector<Cell>& data() noexcept { return cells_; }

  friend bool operator==(const Grid&, const Grid&) = default;

 private:
  [[nodiscard]] std::size_t index(Coord c) const noexcept {
    return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(c.x);
  }

  Dist width_ = 0;
  Dist height_ = 0;
  std::vector<Cell> cells_;
};

}  // namespace meshroute
