#include "common/rng.hpp"

// Rng is header-only today; this translation unit anchors the library target
// and keeps a stable home for future out-of-line additions.
