#include "common/bitgrid.hpp"

namespace meshroute::core {
namespace {

constexpr std::uint64_t kLowBits = 0x0101010101010101ULL;
constexpr std::uint64_t kLow7 = 0x7F7F7F7F7F7F7F7FULL;

/// Collapse 8 bytes (loaded little-endian into `v`) to 8 bits: bit i of the
/// result is 1 iff byte i of `v` is nonzero. The multiply gathers one bit
/// per byte into the top byte; the partial-product positions are pairwise
/// distinct, so no carries corrupt the gather.
[[nodiscard]] std::uint64_t pack8(std::uint64_t v) noexcept {
  const std::uint64_t nonzero = (((v & kLow7) + kLow7) | v) & ~kLow7;  // bit7 per nonzero byte
  return ((nonzero >> 7) * 0x0102040810204080ULL) >> 56;
}

/// Spread 8 bits to 8 bytes of 0x00/0x01 (inverse of pack8 for 0/1 bytes).
[[nodiscard]] std::uint64_t spread8(std::uint64_t bits) noexcept {
  const std::uint64_t placed = (bits * kLowBits) & 0x8040201008040201ULL;
  return (((placed & kLow7) + kLow7) | placed) >> 7 & kLowBits;
}

}  // namespace

void BitGrid::assign(const Grid<bool>& g) {
  resize(g.width(), g.height());
  const std::uint8_t* cells = g.data().data();
  const auto w = static_cast<std::size_t>(width_);
  for (Dist y = 0; y < height_; ++y) {
    const std::uint8_t* src = cells + static_cast<std::size_t>(y) * w;
    std::uint64_t* dst = row(y);
    std::size_t x = 0;
    for (; x + 8 <= w; x += 8) {
      std::uint64_t chunk;
      std::memcpy(&chunk, src + x, 8);
      dst[x >> 6] |= pack8(chunk) << (x & 63);
    }
    for (; x < w; ++x) {
      if (src[x] != 0) dst[x >> 6] |= std::uint64_t{1} << (x & 63);
    }
  }
}

void BitGrid::unpack(Grid<bool>& g) const {
  if (g.width() != width_ || g.height() != height_) {
    g = Grid<bool>(width_, height_, false);
  }
  std::uint8_t* cells = g.data().data();
  const auto w = static_cast<std::size_t>(width_);
  for (Dist y = 0; y < height_; ++y) {
    const std::uint64_t* src = row(y);
    std::uint8_t* dst = cells + static_cast<std::size_t>(y) * w;
    std::size_t x = 0;
    for (; x + 8 <= w; x += 8) {
      const std::uint64_t bytes = spread8((src[x >> 6] >> (x & 63)) & 0xFF);
      std::memcpy(dst + x, &bytes, 8);
    }
    for (; x < w; ++x) {
      dst[x] = static_cast<std::uint8_t>((src[x >> 6] >> (x & 63)) & 1);
    }
  }
}

namespace {

/// Transpose an 8x8 bit matrix packed row-per-byte into one uint64 (bit j of
/// byte i -> bit i of byte j). Three delta-swap rounds (Hacker's Delight 7-3).
[[nodiscard]] std::uint64_t transpose8x8(std::uint64_t x) noexcept {
  std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAULL;
  x ^= t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCULL;
  x ^= t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ULL;
  x ^= t ^ (t << 28);
  return x;
}

}  // namespace

void BitGrid::transpose_into(BitGrid& out) const {
  out.resize(height_, width_);
  // Cache-tiled 8x8-block transpose: each step gathers byte `b` of eight
  // consecutive source rows into one uint64, bit-transposes it, and scatters
  // the eight result bytes into eight consecutive output rows at byte
  // position y/8. Tiles of 64 output rows (one source word column) keep the
  // scattered output words resident; short source rows (y % 8 tail) gather
  // zeros, and output tail bits stay zero because they come from y >= height
  // gathers. Replaces the per-set-bit scatter, which cost one dependent
  // store per bit.
  const std::size_t out_wpr = out.wpr_;
  for (Dist y0 = 0; y0 < height_; y0 += 8) {
    const int rows = static_cast<int>(height_ - y0 < 8 ? height_ - y0 : 8);
    const std::size_t out_word = static_cast<std::size_t>(y0) >> 6;
    const int out_shift = static_cast<int>(y0 & 63);  // multiple of 8
    for (std::size_t j = 0; j < wpr_; ++j) {
      const Dist x_hi = width_ - static_cast<Dist>(j * 64) < 64
                            ? width_ - static_cast<Dist>(j * 64)
                            : Dist{64};
      for (Dist xb = 0; xb < x_hi; xb += 8) {
        std::uint64_t block = 0;
        for (int r = 0; r < rows; ++r) {
          const std::uint64_t w = row(y0 + r)[j];
          block |= ((w >> xb) & 0xFF) << (8 * r);
        }
        if (block == 0) continue;
        const std::uint64_t t = transpose8x8(block);
        const Dist x_base = static_cast<Dist>(j * 64) + xb;
        const int cols = static_cast<int>(width_ - x_base < 8 ? width_ - x_base : 8);
        for (int c = 0; c < cols; ++c) {
          const std::uint64_t byte = (t >> (8 * c)) & 0xFF;
          if (byte != 0) {
            out.words_[static_cast<std::size_t>(x_base + c) * out_wpr + out_word] |=
                byte << out_shift;
          }
        }
      }
    }
  }
}

}  // namespace meshroute::core
