#include "common/bitgrid.hpp"

namespace meshroute::core {
namespace {

constexpr std::uint64_t kLowBits = 0x0101010101010101ULL;
constexpr std::uint64_t kLow7 = 0x7F7F7F7F7F7F7F7FULL;

/// Collapse 8 bytes (loaded little-endian into `v`) to 8 bits: bit i of the
/// result is 1 iff byte i of `v` is nonzero. The multiply gathers one bit
/// per byte into the top byte; the partial-product positions are pairwise
/// distinct, so no carries corrupt the gather.
[[nodiscard]] std::uint64_t pack8(std::uint64_t v) noexcept {
  const std::uint64_t nonzero = (((v & kLow7) + kLow7) | v) & ~kLow7;  // bit7 per nonzero byte
  return ((nonzero >> 7) * 0x0102040810204080ULL) >> 56;
}

/// Spread 8 bits to 8 bytes of 0x00/0x01 (inverse of pack8 for 0/1 bytes).
[[nodiscard]] std::uint64_t spread8(std::uint64_t bits) noexcept {
  const std::uint64_t placed = (bits * kLowBits) & 0x8040201008040201ULL;
  return (((placed & kLow7) + kLow7) | placed) >> 7 & kLowBits;
}

}  // namespace

void BitGrid::assign(const Grid<bool>& g) {
  resize(g.width(), g.height());
  const std::uint8_t* cells = g.data().data();
  const auto w = static_cast<std::size_t>(width_);
  for (Dist y = 0; y < height_; ++y) {
    const std::uint8_t* src = cells + static_cast<std::size_t>(y) * w;
    std::uint64_t* dst = row(y);
    std::size_t x = 0;
    for (; x + 8 <= w; x += 8) {
      std::uint64_t chunk;
      std::memcpy(&chunk, src + x, 8);
      dst[x >> 6] |= pack8(chunk) << (x & 63);
    }
    for (; x < w; ++x) {
      if (src[x] != 0) dst[x >> 6] |= std::uint64_t{1} << (x & 63);
    }
  }
}

void BitGrid::unpack(Grid<bool>& g) const {
  if (g.width() != width_ || g.height() != height_) {
    g = Grid<bool>(width_, height_, false);
  }
  std::uint8_t* cells = g.data().data();
  const auto w = static_cast<std::size_t>(width_);
  for (Dist y = 0; y < height_; ++y) {
    const std::uint64_t* src = row(y);
    std::uint8_t* dst = cells + static_cast<std::size_t>(y) * w;
    std::size_t x = 0;
    for (; x + 8 <= w; x += 8) {
      const std::uint64_t bytes = spread8((src[x >> 6] >> (x & 63)) & 0xFF);
      std::memcpy(dst + x, &bytes, 8);
    }
    for (; x < w; ++x) {
      dst[x] = static_cast<std::uint8_t>((src[x >> 6] >> (x & 63)) & 1);
    }
  }
}

void BitGrid::transpose_into(BitGrid& out) const {
  out.resize(height_, width_);
  for_each_set([&](Coord c) { out.set({c.y, c.x}); });
}

}  // namespace meshroute::core
