// Structure-of-arrays batch of bit planes: `lanes` independent trials'
// BitGrids over the SAME (width, height), interleaved word-by-word so one
// vector op advances every trial at once (DESIGN §12).
//
// Layout: word j of row y of lane l lives at
//     words_[(y * words_per_row() + j) * lane_stride() + l]
// i.e. the innermost axis is the lane. lane_stride() rounds the lane count
// up to a multiple of 8 so kernels always operate on whole u64x8 groups with
// no tail masking in the lane dimension; padding lanes are all-zero planes
// and stay that way under every kernel (an empty plane is a fixpoint of all
// the sweeps), so they never perturb convergence checks.
//
// The per-word tail-bit invariant of BitGrid carries over per lane: the
// unused high bits of word words_per_row()-1 are zero in every lane.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/bitgrid.hpp"
#include "common/coord.hpp"

namespace meshroute::core {

class BitGridBatch {
 public:
  BitGridBatch() = default;
  BitGridBatch(Dist width, Dist height, int lanes) { resize(width, height, lanes); }

  /// Rebind to new dimensions / lane count and zero every bit (including
  /// padding lanes); reuses capacity like BitGrid::resize.
  void resize(Dist width, Dist height, int lanes) {
    assert(width >= 0 && height >= 0 && lanes >= 1);
    width_ = width;
    height_ = height;
    lanes_ = lanes;
    stride_ = static_cast<std::size_t>((lanes + 7) & ~7);
    wpr_ = (static_cast<std::size_t>(width) + 63) / 64;
    const int tail_bits = static_cast<int>(static_cast<std::size_t>(width) - 64 * (wpr_ - 1));
    tail_ = width == 0 ? 0 : (tail_bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail_bits) - 1);
    words_.assign(wpr_ * static_cast<std::size_t>(height) * stride_ + stride_, 0);
  }

  [[nodiscard]] Dist width() const noexcept { return width_; }
  [[nodiscard]] Dist height() const noexcept { return height_; }
  [[nodiscard]] int lanes() const noexcept { return lanes_; }
  /// Lane axis length in memory (lanes rounded up to a multiple of 8).
  [[nodiscard]] std::size_t lane_stride() const noexcept { return stride_; }
  [[nodiscard]] std::size_t words_per_row() const noexcept { return wpr_; }
  [[nodiscard]] std::uint64_t tail_mask() const noexcept { return tail_; }

  void clear() { std::memset(words_.data(), 0, words_.size() * sizeof(std::uint64_t)); }

  /// First word group of row y: the lane_stride() copies of word 0.
  [[nodiscard]] std::uint64_t* row(Dist y) noexcept {
    assert(y >= 0 && y < height_);
    return words_.data() + static_cast<std::size_t>(y) * wpr_ * stride_;
  }
  [[nodiscard]] const std::uint64_t* row(Dist y) const noexcept {
    assert(y >= 0 && y < height_);
    return words_.data() + static_cast<std::size_t>(y) * wpr_ * stride_;
  }

  /// Copy a full single-lane plane into lane `l`. Dimensions must match.
  void load_lane(int l, const BitGrid& src) {
    assert(l >= 0 && l < lanes_);
    assert(src.width() == width_ && src.height() == height_);
    for (Dist y = 0; y < height_; ++y) {
      const std::uint64_t* s = src.row(y);
      std::uint64_t* d = row(y) + static_cast<std::size_t>(l);
      for (std::size_t j = 0; j < wpr_; ++j) d[j * stride_] = s[j];
    }
  }

  /// Copy lane `l` out into a single-lane plane (resized to match).
  void extract_lane(int l, BitGrid& dst) const {
    assert(l >= 0 && l < lanes_);
    dst.resize(width_, height_);
    for (Dist y = 0; y < height_; ++y) {
      const std::uint64_t* s = row(y) + static_cast<std::size_t>(l);
      std::uint64_t* d = dst.row(y);
      for (std::size_t j = 0; j < wpr_; ++j) d[j] = s[j * stride_];
    }
  }

  [[nodiscard]] bool test(int l, Coord c) const noexcept {
    assert(l >= 0 && l < lanes_);
    assert(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_);
    const std::uint64_t w =
        row(c.y)[(static_cast<std::size_t>(c.x) >> 6) * stride_ + static_cast<std::size_t>(l)];
    return (w >> (c.x & 63)) & 1;
  }
  void set(int l, Coord c) noexcept {
    assert(l >= 0 && l < lanes_);
    assert(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_);
    row(c.y)[(static_cast<std::size_t>(c.x) >> 6) * stride_ + static_cast<std::size_t>(l)] |=
        std::uint64_t{1} << (c.x & 63);
  }

 private:
  Dist width_ = 0;
  Dist height_ = 0;
  int lanes_ = 0;
  std::size_t stride_ = 0;
  std::size_t wpr_ = 0;
  std::uint64_t tail_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace meshroute::core
