// Axis-aligned inclusive rectangles — the paper's faulty block
// [xmin:xmax, ymin:ymax] notation maps 1:1 onto this type.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "common/coord.hpp"

namespace meshroute {

/// Inclusive axis-aligned rectangle of mesh nodes.
/// Invariant (checked by valid()): xmin <= xmax and ymin <= ymax.
struct Rect {
  Dist xmin = 0;
  Dist xmax = -1;  // default-constructed Rect is invalid/empty
  Dist ymin = 0;
  Dist ymax = -1;

  friend constexpr auto operator<=>(const Rect&, const Rect&) = default;

  [[nodiscard]] constexpr bool valid() const noexcept { return xmin <= xmax && ymin <= ymax; }

  [[nodiscard]] constexpr Dist width() const noexcept { return xmax - xmin + 1; }
  [[nodiscard]] constexpr Dist height() const noexcept { return ymax - ymin + 1; }
  [[nodiscard]] constexpr std::int64_t area() const noexcept {
    return valid() ? static_cast<std::int64_t>(width()) * height() : 0;
  }

  [[nodiscard]] constexpr bool contains(Coord c) const noexcept {
    return c.x >= xmin && c.x <= xmax && c.y >= ymin && c.y <= ymax;
  }

  [[nodiscard]] constexpr bool contains(const Rect& o) const noexcept {
    return o.valid() && o.xmin >= xmin && o.xmax <= xmax && o.ymin >= ymin && o.ymax <= ymax;
  }

  /// True when the two rectangles share at least one node.
  [[nodiscard]] constexpr bool overlaps(const Rect& o) const noexcept {
    return valid() && o.valid() && xmin <= o.xmax && o.xmin <= xmax && ymin <= o.ymax &&
           o.ymin <= ymax;
  }

  /// True when the rectangles overlap or touch (Chebyshev gap <= `gap`).
  /// `touches(o, 1)` is the merge criterion for faulty blocks: blocks closer
  /// than one fault-free row/column cannot be routed between, so they fuse.
  [[nodiscard]] constexpr bool touches(const Rect& o, Dist gap = 1) const noexcept {
    return valid() && o.valid() && xmin <= o.xmax + gap && o.xmin <= xmax + gap &&
           ymin <= o.ymax + gap && o.ymin <= ymax + gap;
  }

  /// Smallest rectangle containing both.
  [[nodiscard]] constexpr Rect united(const Rect& o) const noexcept {
    if (!valid()) return o;
    if (!o.valid()) return *this;
    return Rect{xmin < o.xmin ? xmin : o.xmin, xmax > o.xmax ? xmax : o.xmax,
                ymin < o.ymin ? ymin : o.ymin, ymax > o.ymax ? ymax : o.ymax};
  }

  /// Grow to include a single node.
  [[nodiscard]] constexpr Rect united(Coord c) const noexcept {
    return united(Rect{c.x, c.x, c.y, c.y});
  }

  /// Rectangle expanded by `d` nodes on every side (the boundary ring of a
  /// faulty block is `expanded(1)` minus the block itself).
  [[nodiscard]] constexpr Rect expanded(Dist d) const noexcept {
    return Rect{xmin - d, xmax + d, ymin - d, ymax + d};
  }

  /// Intersection; invalid Rect when disjoint.
  [[nodiscard]] constexpr Rect intersected(const Rect& o) const noexcept {
    return Rect{xmin > o.xmin ? xmin : o.xmin, xmax < o.xmax ? xmax : o.xmax,
                ymin > o.ymin ? ymin : o.ymin, ymax < o.ymax ? ymax : o.ymax};
  }

  /// "[xmin:xmax, ymin:ymax]" — the paper's notation.
  [[nodiscard]] std::string to_string() const;
};

/// Rectangle covering exactly one node.
[[nodiscard]] constexpr Rect rect_at(Coord c) noexcept { return Rect{c.x, c.x, c.y, c.y}; }

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace meshroute
