#include "common/simd.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string_view>

namespace meshroute::core::simd {

// ===========================================================================
// Tier resolution
// ===========================================================================

namespace {

/// The best tier this process can actually run — the bottom of every forced
/// tier's degradation ladder.
Tier best_tier() noexcept {
  if (native512_supported()) return Tier::Native512;
  if (native_supported()) return Tier::Native;
  return Tier::Generic;
}

Tier resolve_tier() noexcept {
  if (const char* env = std::getenv("MESHROUTE_SIMD")) {
    const std::string_view v(env);
    if (v == "scalar") return Tier::Scalar;
    if (v == "generic") return Tier::Generic;
    if (v == "native") return native_supported() ? Tier::Native : Tier::Generic;
    if (v == "native512") {
      if (native512_supported()) return Tier::Native512;
      return native_supported() ? Tier::Native : Tier::Generic;
    }
  }
  return best_tier();
}

Tier& tier_state() noexcept {
  static Tier t = resolve_tier();
  return t;
}

}  // namespace

const char* tier_name(Tier t) noexcept {
  switch (t) {
    case Tier::Scalar: return "scalar";
    case Tier::Generic: return "generic";
    case Tier::Native: return "native";
    case Tier::Native512: return "native512";
  }
  return "?";
}

bool native_compiled() noexcept {
#if defined(MESHROUTE_SIMD_NATIVE)
  return true;
#else
  return false;
#endif
}

bool native_supported() noexcept {
#if defined(MESHROUTE_SIMD_NATIVE) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool native512_supported() noexcept {
#if defined(MESHROUTE_SIMD_NATIVE) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

Tier active_tier() noexcept { return tier_state(); }

Tier force_tier(Tier t) noexcept {
  if (t == Tier::Native512 && !native512_supported()) t = Tier::Native;
  if (t == Tier::Native && !native_supported()) t = Tier::Generic;
  tier_state() = t;
  return t;
}

namespace {

// ===========================================================================
// Shared pieces (tier-independent)
// ===========================================================================

/// Dirty-row Gauss-Seidel driver shared by all fixpoint tiers: every row
/// starts dirty; sweeping a changed row re-marks only its two neighbors (its
/// own vertical-eligibility mask did not change, so a swept row is at its
/// local fixpoint until a neighbor moves). Any processing order reaches the
/// same (unique, monotone) fixpoint; this one processes ascending with
/// immediate revisits inside a word and an outer rescan for backward marks.
template <typename SweepFn>
void run_dirty_fixpoint(Dist h, std::vector<std::uint64_t>& dirty, SweepFn&& sweep) {
  if (h <= 0) return;
  const std::size_t nb = (static_cast<std::size_t>(h) + 63) / 64;
  dirty.assign(nb, ~std::uint64_t{0});
  if (static_cast<std::size_t>(h) % 64 != 0) {
    dirty[nb - 1] = ~std::uint64_t{0} >> (64 - static_cast<std::size_t>(h) % 64);
  }
  bool pending = true;
  while (pending) {
    pending = false;
    for (std::size_t i = 0; i < nb; ++i) {
      while (dirty[i] != 0) {
        const int b = std::countr_zero(dirty[i]);
        dirty[i] &= dirty[i] - 1;
        const Dist y = static_cast<Dist>(i * 64 + static_cast<std::size_t>(b));
        if (sweep(y)) {
          if (y > 0) dirty[static_cast<std::size_t>(y - 1) >> 6] |= std::uint64_t{1} << ((y - 1) & 63);
          if (y + 1 < h) dirty[static_cast<std::size_t>(y + 1) >> 6] |= std::uint64_t{1} << ((y + 1) & 63);
        }
      }
    }
    for (std::size_t i = 0; i < nb; ++i) pending = pending || dirty[i] != 0;
  }
}

/// E/W safety segment ramps for one row, written to planar int32 buffers.
/// Values between consecutive obstacles are pure functions of the obstacle
/// positions (see compute_safety_levels docs); identical to the AoS version
/// in PR 5 but targeting dense per-field rows the interleave step consumes.
void safety_ew_row(const std::uint64_t* orow, std::size_t nw, Dist w, std::int32_t* e_buf,
                   std::int32_t* w_buf) {
  Dist prev = -1;
  BitGrid::for_each_set_in_row(orow, nw, [&](Dist o) {
    if (prev < 0) {
      for (Dist x = 0; x <= o; ++x) w_buf[x] = kInfiniteDistance;
    } else {
      for (Dist x = prev + 1; x <= o; ++x) w_buf[x] = x - prev - 1;
    }
    for (Dist x = prev < 0 ? 0 : prev; x < o; ++x) e_buf[x] = o - x - 1;
    prev = o;
  });
  if (prev < 0) {
    for (Dist x = 0; x < w; ++x) {
      w_buf[x] = kInfiniteDistance;
      e_buf[x] = kInfiniteDistance;
    }
  } else {
    for (Dist x = prev + 1; x < w; ++x) w_buf[x] = x - prev - 1;
    for (Dist x = prev; x < w; ++x) e_buf[x] = kInfiniteDistance;
  }
}

/// Reachability side masks: ME keeps bits x >= sx, MW keeps x <= sx (both
/// include the source column; nothing propagates across it because the
/// adjacent bit is outside the mask).
void build_side_masks(std::size_t nw, std::uint64_t tail, std::size_t sx,
                      std::vector<std::uint64_t>& me, std::vector<std::uint64_t>& mw) {
  me.assign(nw, 0);
  mw.assign(nw, 0);
  const std::size_t sj = sx / 64;
  for (std::size_t j = 0; j < nw; ++j) {
    if (j > sj) me[j] = ~std::uint64_t{0};
    if (j < sj) mw[j] = ~std::uint64_t{0};
  }
  me[sj] = ~std::uint64_t{0} << (sx % 64);
  mw[sj] = ~std::uint64_t{0} >> (63 - sx % 64);
  if (nw > 0) {
    me[nw - 1] &= tail;
    mw[nw - 1] &= tail;
  }
}

// ===========================================================================
// Scalar tier: the PR-5 single-word-lane kernels, verbatim. These are the
// pinned oracles the vector tiers are equivalence-tested against and the
// MESHROUTE_SIMD=scalar escape hatch.
// ===========================================================================

bool block_sweep_row_scalar(BitGrid& bad, Dist y, std::uint64_t* vmask, std::uint64_t* seed,
                            std::uint64_t* fill) {
  const Dist h = bad.height();
  const std::size_t nw = bad.words_per_row();
  const std::uint64_t tail = bad.tail_mask();
  std::uint64_t* r = bad.row(y);
  const std::uint64_t* up = y + 1 < h ? bad.row(y + 1) : nullptr;
  const std::uint64_t* dn = y > 0 ? bad.row(y - 1) : nullptr;
  for (std::size_t j = 0; j < nw; ++j) {
    vmask[j] = (up != nullptr ? up[j] : 0) | (dn != nullptr ? dn[j] : 0);
  }
  shift_east_row(r, seed, nw, tail);
  fill_east_row(seed, vmask, fill, nw);
  shift_west_row(r, seed, nw);
  fill_west_row(seed, vmask, seed, nw);
  bool changed = false;
  for (std::size_t j = 0; j < nw; ++j) {
    const std::uint64_t add = (fill[j] | seed[j]) & ~r[j];
    if (add != 0) {
      r[j] |= add;
      changed = true;
    }
  }
  return changed;
}

void block_fixpoint_scalar(BitGrid& bad, SweepScratch& s) {
  const std::size_t nw = bad.words_per_row();
  s.row_a.resize(nw);
  s.row_b.resize(nw);
  s.row_c.resize(nw);
  run_dirty_fixpoint(bad.height(), s.dirty, [&](Dist y) {
    return block_sweep_row_scalar(bad, y, s.row_a.data(), s.row_b.data(), s.row_c.data());
  });
}

void mcc_sweeps_scalar(const BitGrid& fp, BitGrid& up, BitGrid& cp, bool type_one,
                       SweepScratch& s) {
  const Dist h = fp.height();
  const std::size_t nw = fp.words_per_row();
  const std::uint64_t tail = fp.tail_mask();
  s.row_a.resize(nw);
  s.row_b.resize(nw);
  std::uint64_t* amask = s.row_a.data();
  std::uint64_t* seed = s.row_b.data();
  for (Dist y = h - 1; y-- > 0;) {  // useless: rows h-2 .. 0
    const std::uint64_t* f_above = fp.row(y + 1);
    const std::uint64_t* u_above = up.row(y + 1);
    const std::uint64_t* f_row = fp.row(y);
    std::uint64_t* u_row = up.row(y);
    for (std::size_t j = 0; j < nw; ++j) amask[j] = (f_above[j] | u_above[j]) & ~f_row[j];
    if (type_one) {  // east trigger: labels spread west through eligible cells
      shift_west_row(f_row, seed, nw);
      fill_west_row(seed, amask, u_row, nw);
    } else {  // west trigger: labels spread east
      shift_east_row(f_row, seed, nw, tail);
      fill_east_row(seed, amask, u_row, nw);
    }
  }
  for (Dist y = 1; y < h; ++y) {  // can't-reach: rows 1 .. h-1
    const std::uint64_t* f_below = fp.row(y - 1);
    const std::uint64_t* c_below = cp.row(y - 1);
    const std::uint64_t* f_row = fp.row(y);
    std::uint64_t* c_row = cp.row(y);
    for (std::size_t j = 0; j < nw; ++j) amask[j] = (f_below[j] | c_below[j]) & ~f_row[j];
    if (type_one) {  // west trigger: labels spread east
      shift_east_row(f_row, seed, nw, tail);
      fill_east_row(seed, amask, c_row, nw);
    } else {  // east trigger: labels spread west
      shift_west_row(f_row, seed, nw);
      fill_west_row(seed, amask, c_row, nw);
    }
  }
}

void reach_fill_scalar(const BitGrid& blocked, Coord source, BitGrid& out, SweepScratch& s) {
  out.resize(blocked.width(), blocked.height());
  if (source.x < 0 || source.x >= blocked.width() || source.y < 0 || source.y >= blocked.height() ||
      blocked.test(source)) {
    return;
  }
  const std::size_t nw = blocked.words_per_row();
  const Dist h = blocked.height();
  build_side_masks(nw, blocked.tail_mask(), static_cast<std::size_t>(source.x), s.row_a, s.row_b);
  const std::uint64_t* me = s.row_a.data();
  const std::uint64_t* mw = s.row_b.data();
  s.row_c.resize(nw);
  s.row_d.resize(nw);
  std::uint64_t* allowed = s.row_c.data();
  std::uint64_t* seed = s.row_d.data();

  const auto sweep_row = [&](std::uint64_t* r, const std::uint64_t* b, const std::uint64_t* prev) {
    for (std::size_t j = 0; j < nw; ++j) {
      allowed[j] = ~b[j] & me[j];
      seed[j] = prev[j] & allowed[j];
    }
    fill_east_row(seed, allowed, r, nw);
    for (std::size_t j = 0; j < nw; ++j) {
      allowed[j] = ~b[j] & mw[j];
      seed[j] = prev[j] & allowed[j];
    }
    fill_west_row(seed, allowed, seed, nw);
    for (std::size_t j = 0; j < nw; ++j) r[j] |= seed[j];
  };

  out.set(source);
  sweep_row(out.row(source.y), blocked.row(source.y), out.row(source.y));
  for (Dist y = source.y + 1; y < h; ++y) sweep_row(out.row(y), blocked.row(y), out.row(y - 1));
  for (Dist y = source.y; y-- > 0;) sweep_row(out.row(y), blocked.row(y), out.row(y + 1));
}

void safety_fill_scalar(const BitGrid& obstacles, std::int32_t* aos, SweepScratch& s) {
  const Dist w = obstacles.width();
  const Dist h = obstacles.height();
  const std::size_t nw = obstacles.words_per_row();
  const auto sw = static_cast<std::size_t>(w);
  // AoS field offsets within one cell: [e, s, w, n] (layout asserted by the
  // info-layer caller).
  for (Dist y = 0; y < h; ++y) {
    std::int32_t* row = aos + static_cast<std::size_t>(y) * sw * 4;
    Dist prev = -1;
    BitGrid::for_each_set_in_row(obstacles.row(y), nw, [&](Dist o) {
      if (prev < 0) {
        for (Dist x = 0; x <= o; ++x) row[x * 4 + 2] = kInfiniteDistance;
      } else {
        for (Dist x = prev + 1; x <= o; ++x) row[x * 4 + 2] = x - prev - 1;
      }
      for (Dist x = prev < 0 ? 0 : prev; x < o; ++x) row[x * 4 + 0] = o - x - 1;
      prev = o;
    });
    if (prev < 0) {
      for (Dist x = 0; x < w; ++x) {
        row[x * 4 + 2] = kInfiniteDistance;
        row[x * 4 + 0] = kInfiniteDistance;
      }
    } else {
      for (Dist x = prev + 1; x < w; ++x) row[x * 4 + 2] = x - prev - 1;
      for (Dist x = prev; x < w; ++x) row[x * 4 + 0] = kInfiniteDistance;
    }
  }
  // N/S: per-column "row of the nearest obstacle so far" counters, sentinels
  // chosen so min() clamps obstacle-free columns to exactly infinity.
  s.col_c.assign(sw, -kInfiniteDistance - 1);
  for (Dist y = 0; y < h; ++y) {  // south: ascending, nearest obstacle below
    std::int32_t* row = aos + static_cast<std::size_t>(y) * sw * 4;
    const std::int32_t* last = s.col_c.data();
    for (Dist x = 0; x < w; ++x) row[x * 4 + 1] = std::min(y - last[x] - 1, kInfiniteDistance);
    BitGrid::for_each_set_in_row(obstacles.row(y), nw,
                                 [&](Dist x) { s.col_c[static_cast<std::size_t>(x)] = y; });
  }
  s.col_c.assign(sw, h + kInfiniteDistance);
  for (Dist y = h; y-- > 0;) {  // north: descending, nearest obstacle above
    std::int32_t* row = aos + static_cast<std::size_t>(y) * sw * 4;
    const std::int32_t* next = s.col_c.data();
    for (Dist x = 0; x < w; ++x) row[x * 4 + 3] = std::min(next[x] - y - 1, kInfiniteDistance);
    BitGrid::for_each_set_in_row(obstacles.row(y), nw,
                                 [&](Dist x) { s.col_c[static_cast<std::size_t>(x)] = y; });
  }
}

// Scalar tier of the batch kernels: per-lane round trips through the
// single-lane scalar kernels. Slow by design — it exists as the oracle and
// escape hatch, not a fast path.

void batch_block_fixpoint_scalar(BitGridBatch& bad, SweepScratch& s) {
  thread_local BitGrid lane;
  for (int l = 0; l < bad.lanes(); ++l) {
    bad.extract_lane(l, lane);
    block_fixpoint_scalar(lane, s);
    bad.load_lane(l, lane);
  }
}

void batch_mcc_sweeps_scalar(const BitGridBatch& fault, BitGridBatch& useless, BitGridBatch& cant,
                             bool type_one, SweepScratch& s) {
  thread_local BitGrid fp, up, cp;
  for (int l = 0; l < fault.lanes(); ++l) {
    fault.extract_lane(l, fp);
    up.resize(fp.width(), fp.height());
    cp.resize(fp.width(), fp.height());
    mcc_sweeps_scalar(fp, up, cp, type_one, s);
    useless.load_lane(l, up);
    cant.load_lane(l, cp);
  }
}

void batch_reach_fill_scalar(const BitGridBatch& blocked, Coord source, BitGridBatch& out,
                             SweepScratch& s) {
  out.resize(blocked.width(), blocked.height(), blocked.lanes());
  thread_local BitGrid bp, rp;
  for (int l = 0; l < blocked.lanes(); ++l) {
    blocked.extract_lane(l, bp);
    reach_fill_scalar(bp, source, rp, s);
    out.load_lane(l, rp);
  }
}

// ===========================================================================
// Vector kernels (GCC vector extensions). Everything below is written once
// as [[gnu::always_inline]] helpers; the Generic tier instantiates them at
// the baseline ISA and the Native tier re-instantiates the identical source
// inside __attribute__((target("avx2"))) wrappers, so the compiler emits two
// ISA-specific copies of the same code (function multiversioning by hand).
// ===========================================================================

typedef std::uint64_t u64x4 __attribute__((vector_size(32)));
typedef std::int64_t i64x4 __attribute__((vector_size(32)));
typedef std::uint64_t u64x8 __attribute__((vector_size(64)));
typedef std::int32_t i32x8 __attribute__((vector_size(32)));

// Unaligned load/store through memcpy — lowered to the target's unaligned
// vector moves once inlined.
template <typename V, typename T>
[[gnu::always_inline]] inline V loadu(const T* p) noexcept {
  V v;
  std::memcpy(&v, p, sizeof(V));
  return v;
}
template <typename V, typename T>
[[gnu::always_inline]] inline void storeu(T* p, V v) noexcept {
  std::memcpy(p, &v, sizeof(V));
}

// Whole-word shifts across the 4 lanes of a row chunk (lane 0 = westmost).
[[gnu::always_inline]] inline u64x4 prev_word(u64x4 v) noexcept {
  const u64x4 z{};
  return __builtin_shufflevector(z, v, 3, 4, 5, 6);
}
[[gnu::always_inline]] inline u64x4 prev_word2(u64x4 v) noexcept {
  const u64x4 z{};
  return __builtin_shufflevector(z, v, 2, 3, 4, 5);
}
[[gnu::always_inline]] inline u64x4 next_word(u64x4 v) noexcept {
  const u64x4 z{};
  return __builtin_shufflevector(v, z, 1, 2, 3, 4);
}
[[gnu::always_inline]] inline u64x4 next_word2(u64x4 v) noexcept {
  const u64x4 z{};
  return __builtin_shufflevector(v, z, 2, 3, 4, 5);
}

[[gnu::always_inline]] inline bool any4(u64x4 v) noexcept {
  return ((v[0] | v[1]) | (v[2] | v[3])) != 0;
}

/// Valid-bit mask of a row chunk: full words below nw, the tail mask at word
/// nw-1, zero beyond (loads may touch the next row / the allocation pad).
[[gnu::always_inline]] inline u64x4 valid_mask4(std::size_t nw, std::uint64_t tail) noexcept {
  u64x4 m{};
  for (std::size_t j = 0; j < 4; ++j) {
    if (j + 1 < nw) {
      m[j] = ~std::uint64_t{0};
    } else if (j + 1 == nw) {
      m[j] = tail;
    }
  }
  return m;
}

[[gnu::always_inline]] inline u64x4 shift_east4(u64x4 v, u64x4 valid) noexcept {
  return ((v << 1) | (prev_word(v) >> 63)) & valid;
}
[[gnu::always_inline]] inline u64x4 shift_west4(u64x4 v) noexcept {
  return (v >> 1) | (next_word(v) << 63);
}

// Lanewise Kogge-Stone occluded fills (6 doubling steps per 64-bit lane).
#define MESHROUTE_KS_STEPS(gen, pro, op)                                                     \
  gen |= pro & (gen op 1);                                                                   \
  pro &= pro op 1;                                                                           \
  gen |= pro & (gen op 2);                                                                   \
  pro &= pro op 2;                                                                           \
  gen |= pro & (gen op 4);                                                                   \
  pro &= pro op 4;                                                                           \
  gen |= pro & (gen op 8);                                                                   \
  pro &= pro op 8;                                                                           \
  gen |= pro & (gen op 16);                                                                  \
  pro &= pro op 16;                                                                          \
  gen |= pro & (gen op 32)

template <typename V>
[[gnu::always_inline]] inline V ks_east(V gen, V pro) noexcept {
  MESHROUTE_KS_STEPS(gen, pro, <<);
  return gen;
}
template <typename V>
[[gnu::always_inline]] inline V ks_west(V gen, V pro) noexcept {
  MESHROUTE_KS_STEPS(gen, pro, >>);
  return gen;
}

/// Whole-row occluded fill east in one u64x4: lanewise Kogge-Stone plus a
/// word-granularity carry chain resolved as a second, 4-lane Kogge-Stone —
/// `e` is each word's fill-from-bit-0 (what a carry entering the word adds)
/// and the arithmetic-shift sign masks are the gen/propagate word bits.
[[gnu::always_inline]] inline u64x4 fill_east4(u64x4 seed, u64x4 allowed) noexcept {
  const u64x4 f0 = ks_east(seed & allowed, allowed);
  const u64x4 one = {1, 1, 1, 1};
  const u64x4 e = ks_east(allowed & one, allowed);
  // gm/pm: all-ones per lane whose word generates / propagates a carry east
  // (bit 63 of fill / entry-fill set). 0 - (x >> 63) broadcasts the bit.
  const u64x4 gm = u64x4{} - (f0 >> 63);
  const u64x4 pm = u64x4{} - (e >> 63);
  u64x4 g = gm | (pm & prev_word(gm));
  const u64x4 p = pm & prev_word(pm);
  g |= p & prev_word2(g);
  return f0 | (e & prev_word(g));
}

[[gnu::always_inline]] inline u64x4 fill_west4(u64x4 seed, u64x4 allowed) noexcept {
  const u64x4 f0 = ks_west(seed & allowed, allowed);
  constexpr std::uint64_t kMsb = std::uint64_t{1} << 63;
  const u64x4 msb = {kMsb, kMsb, kMsb, kMsb};
  const u64x4 e = ks_west(allowed & msb, allowed);
  const u64x4 gm = u64x4{} - (f0 & 1);
  const u64x4 pm = u64x4{} - (e & 1);
  u64x4 g = gm | (pm & next_word(gm));
  const u64x4 p = pm & next_word(pm);
  g |= p & next_word2(g);
  return f0 | (e & next_word(g));
}

// ---------------------------------------------------------------------------
// block_fixpoint: rows <= 256 wide ride the whole-row u64x4 path; wider
// meshes fall back to the scalar row sweep under the same dirty-row driver.
// ---------------------------------------------------------------------------

[[gnu::always_inline]] inline void block_fixpoint_vec(BitGrid& bad, SweepScratch& s) {
  const Dist h = bad.height();
  const std::size_t nw = bad.words_per_row();
  if (nw == 0 || h == 0) return;
  if (nw > 4) {
    block_fixpoint_scalar(bad, s);
    return;
  }
  const u64x4 valid = valid_mask4(nw, bad.tail_mask());
  run_dirty_fixpoint(h, s.dirty, [&](Dist y) {
    std::uint64_t* rp = bad.row(y);
    const u64x4 orig = loadu<u64x4>(rp);
    const u64x4 r = orig & valid;
    u64x4 vm{};
    if (y + 1 < h) vm = loadu<u64x4>(bad.row(y + 1));
    if (y > 0) vm |= loadu<u64x4>(bad.row(y - 1));
    vm &= valid;
    const u64x4 fe = fill_east4(shift_east4(r, valid), vm);
    const u64x4 fw = fill_west4(shift_west4(r), vm);
    const u64x4 add = (fe | fw) & ~r;
    if (!any4(add)) return false;
    storeu(rp, orig | add);  // OR-store: lanes past nw stay untouched
    return true;
  });
}

// ---------------------------------------------------------------------------
// mcc_sweeps
// ---------------------------------------------------------------------------

[[gnu::always_inline]] inline void mcc_sweeps_vec(const BitGrid& fp, BitGrid& up, BitGrid& cp,
                                                  bool type_one, SweepScratch& s) {
  const Dist h = fp.height();
  const std::size_t nw = fp.words_per_row();
  if (nw == 0 || h == 0) return;
  if (nw > 4) {
    mcc_sweeps_scalar(fp, up, cp, type_one, s);
    return;
  }
  const u64x4 valid = valid_mask4(nw, fp.tail_mask());
  // Blend-stores replace the valid lanes, preserving words that belong to
  // the adjacent row / the allocation pad. Written out inline: a lambda
  // taking a u64x4 parameter would not inherit the caller's target ISA, and
  // the un-inlined -O0 call would cross a vector-ABI boundary.
  for (Dist y = h - 1; y-- > 0;) {  // useless: rows h-2 .. 0
    const u64x4 fa = loadu<u64x4>(fp.row(y + 1)) & valid;
    const u64x4 ua = loadu<u64x4>(up.row(y + 1)) & valid;
    const u64x4 fr = loadu<u64x4>(fp.row(y)) & valid;
    const u64x4 amask = (fa | ua) & ~fr;
    const u64x4 fill = type_one ? fill_west4(shift_west4(fr), amask)
                                : fill_east4(shift_east4(fr, valid), amask);
    std::uint64_t* p = up.row(y);
    storeu(p, (loadu<u64x4>(p) & ~valid) | fill);
  }
  for (Dist y = 1; y < h; ++y) {  // can't-reach: rows 1 .. h-1
    const u64x4 fb = loadu<u64x4>(fp.row(y - 1)) & valid;
    const u64x4 cb = loadu<u64x4>(cp.row(y - 1)) & valid;
    const u64x4 fr = loadu<u64x4>(fp.row(y)) & valid;
    const u64x4 amask = (fb | cb) & ~fr;
    const u64x4 fill = type_one ? fill_east4(shift_east4(fr, valid), amask)
                                : fill_west4(shift_west4(fr), amask);
    std::uint64_t* p = cp.row(y);
    storeu(p, (loadu<u64x4>(p) & ~valid) | fill);
  }
}

// ---------------------------------------------------------------------------
// reach_fill
// ---------------------------------------------------------------------------

[[gnu::always_inline]] inline void reach_fill_vec(const BitGrid& blocked, Coord source,
                                                  BitGrid& out, SweepScratch& s) {
  out.resize(blocked.width(), blocked.height());
  if (source.x < 0 || source.x >= blocked.width() || source.y < 0 || source.y >= blocked.height() ||
      blocked.test(source)) {
    return;
  }
  const std::size_t nw = blocked.words_per_row();
  if (nw > 4) {
    // Re-run from scratch on the scalar row path (out is already resized;
    // reach_fill_scalar resizes again, which is a cheap re-zero).
    reach_fill_scalar(blocked, source, out, s);
    return;
  }
  const Dist h = blocked.height();
  const u64x4 valid = valid_mask4(nw, blocked.tail_mask());
  build_side_masks(nw, blocked.tail_mask(), static_cast<std::size_t>(source.x), s.row_a, s.row_b);
  u64x4 me{}, mw{};
  for (std::size_t j = 0; j < nw; ++j) {
    me[j] = s.row_a[j];
    mw[j] = s.row_b[j];
  }
  const auto sweep_row = [&](std::uint64_t* rp, const std::uint64_t* bp,
                             const std::uint64_t* prevp) {
    const u64x4 b = loadu<u64x4>(bp);
    u64x4 allowed = ~b & me;
    u64x4 seed = loadu<u64x4>(prevp) & allowed;
    const u64x4 fe = fill_east4(seed, allowed);
    allowed = ~b & mw;
    // Reload prev: on the source row it aliases the output row mid-update,
    // matching the scalar kernel's sequencing exactly (the overlap is the
    // already-seeded source column, so the result is identical either way).
    seed = loadu<u64x4>(prevp) & allowed;
    const u64x4 fw = fill_west4(seed, allowed);
    storeu(rp, (loadu<u64x4>(rp) & ~valid) | fe | fw);
  };
  out.set(source);
  sweep_row(out.row(source.y), blocked.row(source.y), out.row(source.y));
  for (Dist y = source.y + 1; y < h; ++y) sweep_row(out.row(y), blocked.row(y), out.row(y - 1));
  for (Dist y = source.y; y-- > 0;) sweep_row(out.row(y), blocked.row(y), out.row(y + 1));
}

// ---------------------------------------------------------------------------
// safety_fill: fused single AoS traversal. A descending pass materializes
// the N recurrence into a planar int32 grid; the ascending pass computes
// E/W (segment ramps into planar row buffers) and S (vector column
// recurrence) and interleaves all four into the AoS output row in one go —
// the AoS plane is streamed once instead of three times.
// ---------------------------------------------------------------------------

[[gnu::always_inline]] inline void safety_pass_recurrence(std::int32_t* dst,
                                                          const std::int32_t* counters, Dist y,
                                                          bool descending, Dist w) noexcept {
  // south (ascending): v = min(y - last - 1, INF); north: v = min(next - y - 1, INF)
  const i32x8 yv = descending ? i32x8{} + (-y - 1) : i32x8{} + (y - 1);
  const i32x8 inf = i32x8{} + kInfiniteDistance;
  Dist x = 0;
  for (; x + 8 <= w; x += 8) {
    const i32x8 c = loadu<i32x8>(counters + x);
    i32x8 v = descending ? c + yv : yv - c;
    v = v > inf ? inf : v;  // ternary on vectors = lanewise blend
    storeu(dst + x, v);
  }
  for (; x < w; ++x) {
    const std::int32_t v = descending ? counters[x] - y - 1 : y - counters[x] - 1;
    dst[x] = std::min(v, kInfiniteDistance);
  }
}

[[gnu::always_inline]] inline void safety_fill_vec(const BitGrid& obstacles, std::int32_t* aos,
                                                   SweepScratch& s) {
  const Dist w = obstacles.width();
  const Dist h = obstacles.height();
  const std::size_t nw = obstacles.words_per_row();
  if (w <= 0 || h <= 0) return;
  const auto sw = static_cast<std::size_t>(w);
  const std::size_t pw = (sw + 15) & ~std::size_t{7};  // padded row for vector tails
  s.col_a.resize(pw);
  s.col_b.resize(pw);
  s.col_c.resize(pw);
  s.plane.resize(sw * static_cast<std::size_t>(h) + 8);
  std::int32_t* e_buf = s.col_a.data();
  std::int32_t* w_buf = s.col_b.data();
  std::int32_t* counters = s.col_c.data();

  // Pass 1 (descending): N values into the planar grid.
  std::fill(counters, counters + pw, h + kInfiniteDistance);
  for (Dist y = h; y-- > 0;) {
    safety_pass_recurrence(s.plane.data() + static_cast<std::size_t>(y) * sw, counters, y,
                           /*descending=*/true, w);
    BitGrid::for_each_set_in_row(obstacles.row(y), nw, [&](Dist x) { counters[x] = y; });
  }

  // Pass 2 (ascending): E/W ramps + S recurrence + 4x8 interleave into AoS.
  std::fill(counters, counters + pw, -kInfiniteDistance - 1);
  for (Dist y = 0; y < h; ++y) {
    safety_ew_row(obstacles.row(y), nw, w, e_buf, w_buf);
    std::int32_t* out_row = aos + static_cast<std::size_t>(y) * sw * 4;
    const std::int32_t* n_row = s.plane.data() + static_cast<std::size_t>(y) * sw;
    const i32x8 yv = i32x8{} + (y - 1);
    const i32x8 inf = i32x8{} + kInfiniteDistance;
    Dist x = 0;
    for (; x + 8 <= w; x += 8) {
      const i32x8 e8 = loadu<i32x8>(e_buf + x);
      const i32x8 w8 = loadu<i32x8>(w_buf + x);
      const i32x8 c8 = loadu<i32x8>(counters + x);
      i32x8 s8 = yv - c8;
      s8 = s8 > inf ? inf : s8;
      const i32x8 n8 = loadu<i32x8>(n_row + x);
      // 4x8 transpose-interleave: (E,S,W,N) lanes -> contiguous AoS cells.
      const i32x8 es_lo = __builtin_shufflevector(e8, s8, 0, 8, 1, 9, 2, 10, 3, 11);
      const i32x8 es_hi = __builtin_shufflevector(e8, s8, 4, 12, 5, 13, 6, 14, 7, 15);
      const i32x8 wn_lo = __builtin_shufflevector(w8, n8, 0, 8, 1, 9, 2, 10, 3, 11);
      const i32x8 wn_hi = __builtin_shufflevector(w8, n8, 4, 12, 5, 13, 6, 14, 7, 15);
      std::int32_t* o = out_row + static_cast<std::size_t>(x) * 4;
      storeu(o + 0, __builtin_shufflevector(es_lo, wn_lo, 0, 1, 8, 9, 2, 3, 10, 11));
      storeu(o + 8, __builtin_shufflevector(es_lo, wn_lo, 4, 5, 12, 13, 6, 7, 14, 15));
      storeu(o + 16, __builtin_shufflevector(es_hi, wn_hi, 0, 1, 8, 9, 2, 3, 10, 11));
      storeu(o + 24, __builtin_shufflevector(es_hi, wn_hi, 4, 5, 12, 13, 6, 7, 14, 15));
    }
    for (; x < w; ++x) {
      std::int32_t* o = out_row + static_cast<std::size_t>(x) * 4;
      o[0] = e_buf[x];
      o[1] = std::min(y - counters[x] - 1, kInfiniteDistance);
      o[2] = w_buf[x];
      o[3] = n_row[x];
    }
    BitGrid::for_each_set_in_row(obstacles.row(y), nw, [&](Dist x2) { counters[x2] = y; });
  }
}

// ---------------------------------------------------------------------------
// Batch kernels: vector axis = lanes (u64x8 groups). Word chains stay
// per-lane, so the carries of the scalar kernels become carry VECTORS and no
// cross-lane bit movement exists at all. lane_stride() is a multiple of 8 —
// no tail handling in the lane dimension; padding lanes hold empty planes.
// ---------------------------------------------------------------------------

[[gnu::always_inline]] inline void batch_block_fixpoint_vec(BitGridBatch& bad, SweepScratch& s) {
  const Dist h = bad.height();
  const std::size_t nw = bad.words_per_row();
  const std::size_t ls = bad.lane_stride();
  if (nw == 0 || h == 0) return;
  const std::uint64_t tail = bad.tail_mask();
  s.row_a.resize(nw * ls);  // vmask
  s.row_b.resize(nw * ls);  // east fills
  run_dirty_fixpoint(h, s.dirty, [&](Dist y) {
    std::uint64_t* rp = bad.row(y);
    const std::uint64_t* up = y + 1 < h ? bad.row(y + 1) : nullptr;
    const std::uint64_t* dn = y > 0 ? bad.row(y - 1) : nullptr;
    u64x8 changed{};
    for (std::size_t lc = 0; lc < ls; lc += 8) {
      // vmask per word into row_a.
      for (std::size_t j = 0; j < nw; ++j) {
        u64x8 vm{};
        if (up != nullptr) vm = loadu<u64x8>(up + j * ls + lc);
        if (dn != nullptr) vm |= loadu<u64x8>(dn + j * ls + lc);
        storeu(s.row_a.data() + j * ls + lc, vm);
      }
      // East: seed = row shifted east, fill through vmask, carry per lane.
      u64x8 carry{};
      u64x8 prev{};
      for (std::size_t j = 0; j < nw; ++j) {
        const u64x8 r = loadu<u64x8>(rp + j * ls + lc);
        u64x8 seed = (r << 1) | (prev >> 63);
        if (j + 1 == nw) seed &= tail;
        const u64x8 vm = loadu<u64x8>(s.row_a.data() + j * ls + lc);
        const u64x8 f = ks_east((seed | carry) & vm, vm);
        storeu(s.row_b.data() + j * ls + lc, f);
        carry = f >> 63;
        prev = r;
      }
      // West: mirrored, merging adds immediately.
      carry = u64x8{};
      u64x8 next{};
      for (std::size_t j = nw; j-- > 0;) {
        const u64x8 r = loadu<u64x8>(rp + j * ls + lc);
        const u64x8 seed = (r >> 1) | (next << 63);
        const u64x8 vm = loadu<u64x8>(s.row_a.data() + j * ls + lc);
        const u64x8 f = ks_west((seed | carry) & vm, vm);
        carry = (f & 1) << 63;
        next = r;
        const u64x8 add = (loadu<u64x8>(s.row_b.data() + j * ls + lc) | f) & ~r;
        if ((add[0] | add[1] | add[2] | add[3] | add[4] | add[5] | add[6] | add[7]) != 0) {
          storeu(rp + j * ls + lc, r | add);
          changed |= add;
        }
      }
    }
    return (changed[0] | changed[1] | changed[2] | changed[3] | changed[4] | changed[5] |
            changed[6] | changed[7]) != 0;
  });
}

[[gnu::always_inline]] inline void batch_mcc_sweeps_vec(const BitGridBatch& fp, BitGridBatch& up,
                                                        BitGridBatch& cp, bool type_one,
                                                        SweepScratch& s) {
  const Dist h = fp.height();
  const std::size_t nw = fp.words_per_row();
  const std::size_t ls = fp.lane_stride();
  if (nw == 0 || h == 0) return;
  const std::uint64_t tail = fp.tail_mask();
  (void)s;
  // One directed row sweep per label; each row is a per-lane word chain with
  // carry vectors, exactly mirroring mcc_sweeps_scalar.
  const auto sweep = [&](const std::uint64_t* f_adj, const std::uint64_t* l_adj,
                         const std::uint64_t* f_row, std::uint64_t* l_row,
                         bool fill_west_dir) {
    for (std::size_t lc = 0; lc < ls; lc += 8) {
      u64x8 carry{};
      if (fill_west_dir) {
        u64x8 next{};  // word j+1 of f_row
        for (std::size_t j = nw; j-- > 0;) {
          const u64x8 fr = loadu<u64x8>(f_row + j * ls + lc);
          const u64x8 am = (loadu<u64x8>(f_adj + j * ls + lc) |
                            loadu<u64x8>(l_adj + j * ls + lc)) & ~fr;
          const u64x8 seed = (fr >> 1) | (next << 63);
          const u64x8 f = ks_west((seed | carry) & am, am);
          storeu(l_row + j * ls + lc, f);
          carry = (f & 1) << 63;
          next = fr;
        }
      } else {
        u64x8 prev{};
        for (std::size_t j = 0; j < nw; ++j) {
          const u64x8 fr = loadu<u64x8>(f_row + j * ls + lc);
          const u64x8 am = (loadu<u64x8>(f_adj + j * ls + lc) |
                            loadu<u64x8>(l_adj + j * ls + lc)) & ~fr;
          u64x8 seed = (fr << 1) | (prev >> 63);
          if (j + 1 == nw) seed &= tail;
          const u64x8 f = ks_east((seed | carry) & am, am);
          storeu(l_row + j * ls + lc, f);
          carry = f >> 63;
          prev = fr;
        }
      }
    }
  };
  for (Dist y = h - 1; y-- > 0;) {
    sweep(fp.row(y + 1), up.row(y + 1), fp.row(y), up.row(y), /*fill_west_dir=*/type_one);
  }
  for (Dist y = 1; y < h; ++y) {
    sweep(fp.row(y - 1), cp.row(y - 1), fp.row(y), cp.row(y), /*fill_west_dir=*/!type_one);
  }
}

[[gnu::always_inline]] inline void batch_reach_fill_vec(const BitGridBatch& blocked, Coord source,
                                                        BitGridBatch& out, SweepScratch& s) {
  out.resize(blocked.width(), blocked.height(), blocked.lanes());
  if (source.x < 0 || source.x >= blocked.width() || source.y < 0 ||
      source.y >= blocked.height()) {
    return;
  }
  const std::size_t nw = blocked.words_per_row();
  const std::size_t ls = blocked.lane_stride();
  const Dist h = blocked.height();
  build_side_masks(nw, blocked.tail_mask(), static_cast<std::size_t>(source.x), s.row_c, s.row_d);
  const std::uint64_t* me = s.row_c.data();
  const std::uint64_t* mw = s.row_d.data();
  s.row_a.resize(nw * ls);  // east fills

  // Per-lane source seeding: a lane whose source node is blocked stays an
  // empty plane, exactly like the single-lane kernel's early return.
  const std::size_t sj = static_cast<std::size_t>(source.x) >> 6;
  const std::uint64_t sbit = std::uint64_t{1} << (source.x & 63);
  {
    const std::uint64_t* b = blocked.row(source.y) + sj * ls;
    std::uint64_t* r = out.row(source.y) + sj * ls;
    // Real lanes only — padding lanes must stay empty planes.
    for (int l = 0; l < blocked.lanes(); ++l) {
      if ((b[l] & sbit) == 0) r[l] |= sbit;
    }
  }

  const auto sweep_row = [&](std::uint64_t* rp, const std::uint64_t* bp,
                             const std::uint64_t* prevp) {
    for (std::size_t lc = 0; lc < ls; lc += 8) {
      u64x8 carry{};
      for (std::size_t j = 0; j < nw; ++j) {
        const u64x8 allowed = ~loadu<u64x8>(bp + j * ls + lc) & me[j];
        const u64x8 seed = loadu<u64x8>(prevp + j * ls + lc) & allowed;
        const u64x8 f = ks_east((seed | carry) & allowed, allowed);
        storeu(s.row_a.data() + j * ls + lc, f);
        carry = f >> 63;
      }
      carry = u64x8{};
      for (std::size_t j = nw; j-- > 0;) {
        const u64x8 allowed = ~loadu<u64x8>(bp + j * ls + lc) & mw[j];
        const u64x8 seed = loadu<u64x8>(prevp + j * ls + lc) & allowed;
        const u64x8 f = ks_west((seed | carry) & allowed, allowed);
        carry = (f & 1) << 63;
        storeu(rp + j * ls + lc,
               loadu<u64x8>(rp + j * ls + lc) | loadu<u64x8>(s.row_a.data() + j * ls + lc) | f);
      }
    }
  };
  sweep_row(out.row(source.y), blocked.row(source.y), out.row(source.y));
  for (Dist y = source.y + 1; y < h; ++y) sweep_row(out.row(y), blocked.row(y), out.row(y - 1));
  for (Dist y = source.y; y-- > 0;) sweep_row(out.row(y), blocked.row(y), out.row(y + 1));
}

// ===========================================================================
// Tier instantiation: Generic at the baseline ISA, Native under target(avx2).
// ===========================================================================

void block_fixpoint_generic(BitGrid& bad, SweepScratch& s) { block_fixpoint_vec(bad, s); }
void mcc_sweeps_generic(const BitGrid& fp, BitGrid& up, BitGrid& cp, bool t1, SweepScratch& s) {
  mcc_sweeps_vec(fp, up, cp, t1, s);
}
void reach_fill_generic(const BitGrid& b, Coord src, BitGrid& out, SweepScratch& s) {
  reach_fill_vec(b, src, out, s);
}
void safety_fill_generic(const BitGrid& o, std::int32_t* aos, SweepScratch& s) {
  safety_fill_vec(o, aos, s);
}
void batch_block_fixpoint_generic(BitGridBatch& bad, SweepScratch& s) {
  batch_block_fixpoint_vec(bad, s);
}
void batch_mcc_sweeps_generic(const BitGridBatch& fp, BitGridBatch& up, BitGridBatch& cp, bool t1,
                              SweepScratch& s) {
  batch_mcc_sweeps_vec(fp, up, cp, t1, s);
}
void batch_reach_fill_generic(const BitGridBatch& b, Coord src, BitGridBatch& out,
                              SweepScratch& s) {
  batch_reach_fill_vec(b, src, out, s);
}

#if defined(MESHROUTE_SIMD_NATIVE) && (defined(__x86_64__) || defined(__i386__))
#define MESHROUTE_TARGET_AVX2 __attribute__((target("avx2")))
MESHROUTE_TARGET_AVX2 void block_fixpoint_native(BitGrid& bad, SweepScratch& s) {
  block_fixpoint_vec(bad, s);
}
MESHROUTE_TARGET_AVX2 void mcc_sweeps_native(const BitGrid& fp, BitGrid& up, BitGrid& cp, bool t1,
                                             SweepScratch& s) {
  mcc_sweeps_vec(fp, up, cp, t1, s);
}
MESHROUTE_TARGET_AVX2 void reach_fill_native(const BitGrid& b, Coord src, BitGrid& out,
                                             SweepScratch& s) {
  reach_fill_vec(b, src, out, s);
}
MESHROUTE_TARGET_AVX2 void safety_fill_native(const BitGrid& o, std::int32_t* aos,
                                              SweepScratch& s) {
  safety_fill_vec(o, aos, s);
}
MESHROUTE_TARGET_AVX2 void batch_block_fixpoint_native(BitGridBatch& bad, SweepScratch& s) {
  batch_block_fixpoint_vec(bad, s);
}
MESHROUTE_TARGET_AVX2 void batch_mcc_sweeps_native(const BitGridBatch& fp, BitGridBatch& up,
                                                   BitGridBatch& cp, bool t1, SweepScratch& s) {
  batch_mcc_sweeps_vec(fp, up, cp, t1, s);
}
MESHROUTE_TARGET_AVX2 void batch_reach_fill_native(const BitGridBatch& b, Coord src,
                                                   BitGridBatch& out, SweepScratch& s) {
  batch_reach_fill_vec(b, src, out, s);
}
#define MESHROUTE_HAVE_NATIVE 1

// The AVX-512 tier re-instantiates the identical source once more under
// target("avx512f") (which implies AVX2 on GCC, so the u64x4/i32x8 paths
// still lower natively): every u64x8 op in the batch kernels becomes one zmm
// instruction instead of a split ymm pair. Selected at runtime only when
// __builtin_cpu_supports("avx512f") agrees (simd.hpp tier ladder).
#define MESHROUTE_TARGET_AVX512 __attribute__((target("avx512f")))
MESHROUTE_TARGET_AVX512 void block_fixpoint_native512(BitGrid& bad, SweepScratch& s) {
  block_fixpoint_vec(bad, s);
}
MESHROUTE_TARGET_AVX512 void mcc_sweeps_native512(const BitGrid& fp, BitGrid& up, BitGrid& cp,
                                                  bool t1, SweepScratch& s) {
  mcc_sweeps_vec(fp, up, cp, t1, s);
}
MESHROUTE_TARGET_AVX512 void reach_fill_native512(const BitGrid& b, Coord src, BitGrid& out,
                                                  SweepScratch& s) {
  reach_fill_vec(b, src, out, s);
}
MESHROUTE_TARGET_AVX512 void safety_fill_native512(const BitGrid& o, std::int32_t* aos,
                                                   SweepScratch& s) {
  safety_fill_vec(o, aos, s);
}
MESHROUTE_TARGET_AVX512 void batch_block_fixpoint_native512(BitGridBatch& bad, SweepScratch& s) {
  batch_block_fixpoint_vec(bad, s);
}
MESHROUTE_TARGET_AVX512 void batch_mcc_sweeps_native512(const BitGridBatch& fp, BitGridBatch& up,
                                                        BitGridBatch& cp, bool t1,
                                                        SweepScratch& s) {
  batch_mcc_sweeps_vec(fp, up, cp, t1, s);
}
MESHROUTE_TARGET_AVX512 void batch_reach_fill_native512(const BitGridBatch& b, Coord src,
                                                        BitGridBatch& out, SweepScratch& s) {
  batch_reach_fill_vec(b, src, out, s);
}
#endif

}  // namespace

// ===========================================================================
// Public dispatch
// ===========================================================================

#if defined(MESHROUTE_HAVE_NATIVE)
#define MESHROUTE_DISPATCH(fn, ...)                            \
  switch (tier_state()) {                                      \
    case Tier::Scalar: return fn##_scalar(__VA_ARGS__);        \
    case Tier::Native: return fn##_native(__VA_ARGS__);        \
    case Tier::Native512: return fn##_native512(__VA_ARGS__);  \
    case Tier::Generic: break;                                 \
  }                                                            \
  return fn##_generic(__VA_ARGS__)
#else
#define MESHROUTE_DISPATCH(fn, ...)                          \
  switch (tier_state()) {                                    \
    case Tier::Scalar: return fn##_scalar(__VA_ARGS__);      \
    default: return fn##_generic(__VA_ARGS__);               \
  }
#endif

void block_fixpoint(BitGrid& bad, SweepScratch& scratch) {
  MESHROUTE_DISPATCH(block_fixpoint, bad, scratch);
}
void mcc_sweeps(const BitGrid& fault, BitGrid& useless, BitGrid& cant, bool type_one,
                SweepScratch& scratch) {
  MESHROUTE_DISPATCH(mcc_sweeps, fault, useless, cant, type_one, scratch);
}
void reach_fill(const BitGrid& blocked, Coord source, BitGrid& out, SweepScratch& scratch) {
  MESHROUTE_DISPATCH(reach_fill, blocked, source, out, scratch);
}
void safety_fill(const BitGrid& obstacles, std::int32_t* aos, SweepScratch& scratch) {
  MESHROUTE_DISPATCH(safety_fill, obstacles, aos, scratch);
}
void batch_block_fixpoint(BitGridBatch& bad, SweepScratch& scratch) {
  MESHROUTE_DISPATCH(batch_block_fixpoint, bad, scratch);
}
void batch_mcc_sweeps(const BitGridBatch& fault, BitGridBatch& useless, BitGridBatch& cant,
                      bool type_one, SweepScratch& scratch) {
  MESHROUTE_DISPATCH(batch_mcc_sweeps, fault, useless, cant, type_one, scratch);
}
void batch_reach_fill(const BitGridBatch& blocked, Coord source, BitGridBatch& out,
                      SweepScratch& scratch) {
  MESHROUTE_DISPATCH(batch_reach_fill, blocked, source, out, scratch);
}

}  // namespace meshroute::core::simd
