// SIMD tier layer under core::BitGrid (DESIGN §12): the grid-level sweep
// kernels behind the fault-model fixpoints, the reachability oracle, and the
// safety-level fill, each available in four tiers selected once per process:
//
//   * Scalar    — the PR-5 word-loop kernels (one uint64 lane at a time).
//     The equivalence oracle for the other tiers, and the
//     MESHROUTE_SIMD=scalar escape hatch.
//   * Generic   — the same kernels written against GCC vector extensions
//     (u64x4 / i32x8 lanes) compiled at the baseline ISA. Portable: on
//     x86-64 it lowers to SSE2, elsewhere to whatever the target has.
//   * Native    — the identical vector-extension source compiled under
//     __attribute__((target("avx2"))), selected at runtime only when
//     __builtin_cpu_supports("avx2") says so. Compiled in only when the
//     MESHROUTE_SIMD CMake option is ON (the default).
//   * Native512 — the same source once more under target("avx512f"): the
//     u64x8 batch lanes lower to single zmm ops instead of split ymm pairs,
//     so the batch-of-meshes sweeps double their per-op lane width. Selected
//     only when __builtin_cpu_supports("avx512f") agrees.
//
// Tier resolution: the MESHROUTE_SIMD environment variable ("scalar",
// "generic", "native", "native512") forces a tier; otherwise the best
// available one runs (native512 if compiled in and the CPU agrees, else
// native, else generic). A forced "native512"/"native" silently degrades
// down the ladder when unsupported, so the dispatch ctests can run the same
// command line everywhere. force_tier() overrides both for in-process tests.
//
// All tiers produce BIT-IDENTICAL fixpoints (tests/test_simd.cpp and the
// simd_dispatch ctest assert byte equality); only throughput differs.
//
// The batch entry points run the same sweeps over a core::BitGridBatch —
// 8-64 independent trials' planes interleaved word-by-word — where every
// word-at-a-time operation becomes one vector op across lanes with no
// cross-lane carries at all (lanes are independent meshes).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitgrid.hpp"
#include "common/bitgrid_batch.hpp"
#include "common/coord.hpp"

namespace meshroute::core::simd {

enum class Tier : std::uint8_t { Scalar = 0, Generic = 1, Native = 2, Native512 = 3 };

/// Stable lowercase tier name ("scalar"/"generic"/"native"/"native512") —
/// the value the MESHROUTE_SIMD env var accepts and the benches' meta.simd
/// field records.
[[nodiscard]] const char* tier_name(Tier t) noexcept;

/// True when the native (AVX2/AVX-512) tiers were compiled in
/// (MESHROUTE_SIMD=ON).
[[nodiscard]] bool native_compiled() noexcept;
/// True when the native tier is compiled in AND this CPU supports it.
[[nodiscard]] bool native_supported() noexcept;
/// True when the native512 tier is compiled in AND this CPU has AVX-512F.
[[nodiscard]] bool native512_supported() noexcept;

/// The tier the kernels below dispatch to. Resolved once from the
/// MESHROUTE_SIMD env var / CPU probe; force_tier() overrides it.
[[nodiscard]] Tier active_tier() noexcept;

/// Test hook: pin the dispatch to `t` (degrading down the
/// Native512→Native→Generic ladder when unsupported) for the rest of the
/// process, returning the tier actually installed. Not thread-safe against
/// concurrent kernel calls.
Tier force_tier(Tier t) noexcept;

/// Reusable per-thread buffers for the row kernels. All vectors are plain
/// uint64/int32 storage, resized (and retained) by the kernels themselves.
struct SweepScratch {
  std::vector<std::uint64_t> row_a;   ///< generic row buffer (vmask/allowed)
  std::vector<std::uint64_t> row_b;   ///< generic row buffer (seeds)
  std::vector<std::uint64_t> row_c;   ///< generic row buffer (fills)
  std::vector<std::uint64_t> row_d;   ///< generic row buffer (side masks)
  std::vector<std::uint64_t> dirty;   ///< dirty-row bitset for the fixpoint
  std::vector<std::int32_t> col_a;    ///< safety planar row buffers (e)
  std::vector<std::int32_t> col_b;    ///< (w)
  std::vector<std::int32_t> col_c;    ///< (s) + south counters
  std::vector<std::int32_t> col_d;    ///< north counters
  std::vector<std::int32_t> plane;    ///< safety planar N grid (w*h int32)
};

// ---------------------------------------------------------------------------
// Single-lane kernels (one BitGrid). Semantics are pinned by the scalar
// implementations in simd.cpp; all tiers are equivalence-tested against them.
// ---------------------------------------------------------------------------

/// Definition 1's disable rule driven to its (unique, monotone) fixpoint in
/// place: a cell turns bad when it has a bad horizontal AND a bad vertical
/// neighbor. Dirty-row Gauss-Seidel: every row starts dirty, a changed row
/// re-marks only its two neighbors, and converged regions are never swept
/// again — the bulk of the old alternating full passes was verification.
void block_fixpoint(BitGrid& bad, SweepScratch& scratch);

/// Definition 2's two directed monotone closures ("useless" / "can't
/// reach"): single descending/ascending row sweeps with an occluded fill per
/// row. `useless` and `cant` must be pre-sized to `fault`'s dimensions and
/// zero; TypeTwo swaps the within-row fill direction.
void mcc_sweeps(const BitGrid& fault, BitGrid& useless, BitGrid& cant, bool type_one,
                SweepScratch& scratch);

/// Four-quadrant monotone reachability from `source` avoiding `blocked`;
/// `out` is resized and fully overwritten.
void reach_fill(const BitGrid& blocked, Coord source, BitGrid& out, SweepScratch& scratch);

/// The extended-safety fill: for every node the (E, S, W, N) distances to
/// the nearest obstacle along its row/column, written into an
/// ExtendedSafetyLevel AoS grid (`aos` = 4 int32 per cell, row-major, E S W
/// N field order — static_asserted by the caller). E/W are per-row obstacle
/// segment ramps; N/S are planar column recurrences riding the same vector
/// row path (8 int32 lanes per op) instead of per-column scalar counters.
void safety_fill(const BitGrid& obstacles, std::int32_t* aos, SweepScratch& scratch);

// ---------------------------------------------------------------------------
// Batch kernels (BitGridBatch): identical sweeps across every lane in
// lockstep. Converged lanes ride along idempotently — the fixpoint is
// monotone, so re-sweeping a stable lane is a no-op — and every word
// operation covers lane_stride() trials at once.
// ---------------------------------------------------------------------------

void batch_block_fixpoint(BitGridBatch& bad, SweepScratch& scratch);

void batch_mcc_sweeps(const BitGridBatch& fault, BitGridBatch& useless, BitGridBatch& cant,
                      bool type_one, SweepScratch& scratch);

/// Reachability for every lane from one common source (the sweep engine's
/// batches share the mesh center).
void batch_reach_fill(const BitGridBatch& blocked, Coord source, BitGridBatch& out,
                      SweepScratch& scratch);

}  // namespace meshroute::core::simd
