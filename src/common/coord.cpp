#include "common/coord.hpp"

#include <ostream>

namespace meshroute {

const char* to_string(Direction d) noexcept {
  switch (d) {
    case Direction::East: return "E";
    case Direction::South: return "S";
    case Direction::West: return "W";
    case Direction::North: return "N";
  }
  return "?";
}

std::string to_string(Coord c) {
  return "(" + std::to_string(c.x) + ", " + std::to_string(c.y) + ")";
}

std::ostream& operator<<(std::ostream& os, Coord c) { return os << to_string(c); }

std::ostream& operator<<(std::ostream& os, Direction d) { return os << to_string(d); }

}  // namespace meshroute
