#include "common/rect.hpp"

#include <ostream>

namespace meshroute {

std::string Rect::to_string() const {
  return "[" + std::to_string(xmin) + ":" + std::to_string(xmax) + ", " + std::to_string(ymin) +
         ":" + std::to_string(ymax) + "]";
}

std::ostream& operator<<(std::ostream& os, const Rect& r) { return os << r.to_string(); }

}  // namespace meshroute
