#include "core/fault_tolerant_mesh.hpp"

#include <array>

#include "common/bitgrid.hpp"
#include "cond/wang.hpp"
#include "mesh/frame.hpp"

namespace meshroute {

/// Everything derivable from the fault set, rebuilt atomically.
struct FaultTolerantMesh::Derived {
  fault::BlockSet blocks;
  fault::MccModel mcc;
  info::BoundaryInfoMap boundary;
  Grid<bool> faulty_mask;
  Grid<bool> fb_mask;
  Grid<bool> mcc1_mask;
  Grid<bool> mcc2_mask;
  info::SafetyGrid fb_safety;
  info::SafetyGrid mcc1_safety;
  info::SafetyGrid mcc2_safety;

  Derived(const Mesh2D& mesh, const fault::FaultSet& faults)
      : blocks(fault::build_faulty_blocks(mesh, faults)),
        mcc(fault::build_mcc_model(mesh, faults)),
        boundary(mesh, blocks),
        faulty_mask(faults.mask()),
        fb_mask(info::obstacle_mask(mesh, blocks)),
        mcc1_mask(info::obstacle_mask(mesh, mcc.type_one)),
        mcc2_mask(info::obstacle_mask(mesh, mcc.type_two)) {
    // One batch call fills all three safety grids of the snapshot; each lane
    // is the same vector fill compute_safety_levels runs (DESIGN §12), so
    // the epoch rebuild result is bit-identical to three separate calls.
    std::array<core::BitGrid, 3> planes;
    planes[0].assign(fb_mask);
    planes[1].assign(mcc1_mask);
    planes[2].assign(mcc2_mask);
    const std::array<const core::BitGrid*, 3> in{&planes[0], &planes[1], &planes[2]};
    const std::array<info::SafetyGrid*, 3> out{&fb_safety, &mcc1_safety, &mcc2_safety};
    info::compute_safety_levels_batch(mesh, in, out);
  }
};

FaultTolerantMesh::FaultTolerantMesh(Dist width, Dist height)
    : mesh_(width, height), faults_(mesh_) {}

void FaultTolerantMesh::inject_fault(Coord c) {
  faults_.add(c);
  derived_.reset();
}

void FaultTolerantMesh::inject_faults(std::span<const Coord> cs) {
  for (const Coord c : cs) faults_.add(c);
  derived_.reset();
}

void FaultTolerantMesh::clear_faults() {
  faults_ = fault::FaultSet(mesh_);
  derived_.reset();
}

const FaultTolerantMesh::Derived& FaultTolerantMesh::derived() const {
  if (!derived_) derived_ = std::make_shared<const Derived>(mesh_, faults_);
  return *derived_;
}

const fault::BlockSet& FaultTolerantMesh::blocks() const { return derived().blocks; }
const fault::MccModel& FaultTolerantMesh::mcc() const { return derived().mcc; }
const info::BoundaryInfoMap& FaultTolerantMesh::boundary() const { return derived().boundary; }

const info::SafetyGrid& FaultTolerantMesh::safety(FaultModel model, Quadrant q) const {
  const Derived& d = derived();
  if (model == FaultModel::FaultyBlock) return d.fb_safety;
  return fault::mcc_kind_for(q) == fault::MccKind::TypeOne ? d.mcc1_safety : d.mcc2_safety;
}

const Grid<bool>& FaultTolerantMesh::obstacles(FaultModel model, Quadrant q) const {
  const Derived& d = derived();
  if (model == FaultModel::FaultyBlock) return d.fb_mask;
  return fault::mcc_kind_for(q) == fault::MccKind::TypeOne ? d.mcc1_mask : d.mcc2_mask;
}

cond::RoutingProblem FaultTolerantMesh::problem(Coord s, Coord d, FaultModel model) const {
  const Quadrant q = quadrant_of(s, d);
  return {&mesh_, &obstacles(model, q), &safety(model, q), s, d};
}

route::QueryView FaultTolerantMesh::query_view() const {
  const Derived& der = derived();
  route::QueryView v;
  v.mesh = &mesh_;
  v.blocks = &der.blocks;
  v.boundary = &der.boundary;
  v.faulty_mask = &der.faulty_mask;
  v.fb_mask = &der.fb_mask;
  v.fb_safety = &der.fb_safety;
  v.mcc1_mask = &der.mcc1_mask;
  v.mcc1_safety = &der.mcc1_safety;
  v.mcc2_mask = &der.mcc2_mask;
  v.mcc2_safety = &der.mcc2_safety;
  return v;
}

const char* to_string(Method m) noexcept {
  switch (m) {
    case Method::None: return "none";
    case Method::BaseSafe: return "safe source (Definition 3)";
    case Method::Ext1Preferred: return "extension 1 (preferred neighbor)";
    case Method::Ext1Spare: return "extension 1 (spare neighbor, sub-minimal)";
    case Method::Ext2Axis: return "extension 2 (axis representative)";
    case Method::Ext3Pivot: return "extension 3 (pivot)";
  }
  return "?";
}

Certificate FaultTolerantMesh::explain(Coord s, Coord d, FaultModel model,
                                       const DecideOptions& opts) const {
  const cond::RoutingProblem p = problem(s, d, model);
  Certificate cert;
  if (cond::source_safe(p)) {
    return Certificate{cond::Decision::Minimal, Method::BaseSafe, s};
  }
  if (opts.use_extension1) {
    Coord via{};
    const cond::Decision dec = cond::extension1(p, &via);
    if (dec == cond::Decision::Minimal) {
      return Certificate{dec, Method::Ext1Preferred, via};
    }
    if (dec == cond::Decision::SubMinimal) {
      cert = Certificate{dec, Method::Ext1Spare, via};  // keep as fallback
    }
  }
  if (opts.use_extension2) {
    Coord via{};
    if (cond::extension2(p, opts.segment_size, &via) == cond::Decision::Minimal) {
      return Certificate{cond::Decision::Minimal, Method::Ext2Axis, via};
    }
  }
  if (!opts.pivots.empty()) {
    Coord via{};
    if (cond::extension3(p, opts.pivots, &via) == cond::Decision::Minimal) {
      return Certificate{cond::Decision::Minimal, Method::Ext3Pivot, via};
    }
  }
  return cert;
}

route::RouteResult FaultTolerantMesh::route_certified(Coord s, Coord d,
                                                      const Certificate& cert,
                                                      route::InfoPolicy policy,
                                                      Rng* rng) const {
  if (cert.method == Method::None) {
    route::RouteResult failed;
    failed.status = route::RouteStatus::Stuck;
    return failed;
  }
  if (cert.method == Method::BaseSafe || cert.via == s) return route(s, d, policy, rng);
  return route_via(s, cert.via, d, policy, rng);
}

cond::Decision FaultTolerantMesh::decide(Coord s, Coord d, FaultModel model,
                                         const DecideOptions& opts) const {
  const cond::RoutingProblem p = problem(s, d, model);
  cond::Decision best = cond::Decision::Unknown;
  if (cond::source_safe(p)) return cond::Decision::Minimal;
  if (opts.use_extension1) {
    const cond::Decision dec = cond::extension1(p);
    if (dec == cond::Decision::Minimal) return dec;
    if (dec == cond::Decision::SubMinimal) best = dec;
  }
  if (opts.use_extension2 &&
      cond::extension2(p, opts.segment_size) == cond::Decision::Minimal) {
    return cond::Decision::Minimal;
  }
  if (!opts.pivots.empty() && cond::extension3(p, opts.pivots) == cond::Decision::Minimal) {
    return cond::Decision::Minimal;
  }
  return best;
}

cond::Decision FaultTolerantMesh::decide_strategy(Coord s, Coord d, FaultModel model,
                                                  cond::StrategyId id,
                                                  std::span<const Coord> pivots,
                                                  const cond::StrategyConfig& cfg) const {
  return cond::run_strategy(problem(s, d, model), id, cfg, pivots);
}

cond::Decision FaultTolerantMesh::decide_strategy(Coord s, Coord d, FaultModel model,
                                                  cond::StrategyId id,
                                                  const DecideOptions& opts) const {
  const cond::StrategyConfig cfg{.segment_size = opts.segment_size};
  return cond::run_strategy(problem(s, d, model), id, cfg, opts.pivots);
}

route::RouteResult FaultTolerantMesh::route(Coord s, Coord d, route::InfoPolicy policy,
                                            Rng* rng) const {
  const Derived& der = derived();
  const route::MinimalRouter router(mesh_, der.blocks, &der.boundary, policy);
  return router.route(s, d, rng);
}

route::RouteResult FaultTolerantMesh::route_via(Coord s, Coord via, Coord d,
                                                route::InfoPolicy policy, Rng* rng) const {
  const Derived& der = derived();
  const route::MinimalRouter router(mesh_, der.blocks, &der.boundary, policy);
  return router.route_via(s, via, d, rng);
}

bool FaultTolerantMesh::minimal_path_exists(Coord s, Coord d) const {
  return cond::monotone_path_exists(mesh_, derived().faulty_mask, s, d);
}

Grid<bool> FaultTolerantMesh::minimal_reachability(Coord s) const {
  return cond::monotone_reachability(mesh_, derived().faulty_mask, s);
}

}  // namespace meshroute
