// The library facade: one object that owns a mesh, its fault set, both fault
// models, all derived limited-global information, and exposes the paper's
// decision procedures and routing. This is the API the examples and most
// downstream users consume; the per-module headers remain available for
// finer-grained use.
//
//   FaultTolerantMesh ftm(200, 200);
//   ftm.inject_fault({57, 80});
//   auto decision = ftm.decide(src, dst, FaultModel::FaultyBlock, opts);
//   auto result   = ftm.route(src, dst);
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/coord.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "cond/conditions.hpp"
#include "cond/strategies.hpp"
#include "fault/block_model.hpp"
#include "fault/fault_set.hpp"
#include "fault/mcc_model.hpp"
#include "info/boundary.hpp"
#include "info/safety_level.hpp"
#include "mesh/mesh2d.hpp"
#include "route/query.hpp"
#include "route/router.hpp"

namespace meshroute {

/// Which fault model a query runs under. Alias of the consolidated query
/// surface's model enum (route/query.hpp), kept under the historical name.
using FaultModel = route::QueryModel;  // to_string comes with it via ADL

/// Which sufficient conditions decide() may use, mirroring the paper's
/// extensions. Defaults replicate strategy 4 minus pivots.
struct DecideOptions {
  bool use_extension1 = true;
  bool use_extension2 = true;
  Dist segment_size = 1;          ///< extension-2 info granularity
  std::vector<Coord> pivots;      ///< extension-3 pivot set (empty = ext3 off)
};

/// Which machinery produced a decision — the human-readable part of a
/// routing certificate.
enum class Method : std::uint8_t {
  None = 0,           ///< nothing certified (Decision::Unknown)
  BaseSafe = 1,       ///< Definition 3 at the source
  Ext1Preferred = 2,  ///< a preferred neighbor is safe (Theorem 1a)
  Ext1Spare = 3,      ///< a spare neighbor is safe (sub-minimal, Theorem 1a)
  Ext2Axis = 4,       ///< an axis representative factors the route (Theorem 1b)
  Ext3Pivot = 5,      ///< a pivot factors the route (Theorem 1c)
};

[[nodiscard]] const char* to_string(Method m) noexcept;

/// A decision plus the witness that realizes it: route through `via`
/// (the source itself for BaseSafe) and the promised length holds.
struct Certificate {
  cond::Decision decision = cond::Decision::Unknown;
  Method method = Method::None;
  Coord via{};
};

/// Facade over the whole reproduction; owns all derived state and rebuilds
/// it lazily after fault injection.
class FaultTolerantMesh {
 public:
  FaultTolerantMesh(Dist width, Dist height);

  /// Mark a node faulty. Derived state (blocks, MCCs, safety levels,
  /// boundary information) is invalidated and rebuilt on next access.
  void inject_fault(Coord c);
  void inject_faults(std::span<const Coord> cs);

  /// Remove every fault, returning the mesh to its fault-free state.
  /// Derived state is invalidated exactly like inject_fault().
  void clear_faults();

  [[nodiscard]] const Mesh2D& mesh() const noexcept { return mesh_; }
  [[nodiscard]] const fault::FaultSet& faults() const noexcept { return faults_; }

  [[nodiscard]] const fault::BlockSet& blocks() const;
  [[nodiscard]] const fault::MccModel& mcc() const;
  [[nodiscard]] const info::BoundaryInfoMap& boundary() const;

  /// Safety levels under `model` for routes headed into quadrant `q`
  /// (the quadrant only matters under the MCC model, whose labeling is
  /// quadrant-dependent).
  [[nodiscard]] const info::SafetyGrid& safety(FaultModel model, Quadrant q) const;

  /// Obstacle mask matching safety(model, q).
  [[nodiscard]] const Grid<bool>& obstacles(FaultModel model, Quadrant q) const;

  /// A cond::RoutingProblem wired to this mesh's state.
  [[nodiscard]] cond::RoutingProblem problem(Coord s, Coord d, FaultModel model) const;

  /// The consolidated read-side bundle over this mesh's current derived
  /// state (route/query.hpp) — the preferred query surface; the direct
  /// decide/route methods below are kept for convenience but deprecated for
  /// new call sites (DESIGN §11). The view borrows the lazily-built derived
  /// state: it stays valid until the next fault injection / clear_faults().
  [[nodiscard]] route::QueryView query_view() const;

  /// Evaluate the sufficient conditions at the source.
  [[nodiscard]] cond::Decision decide(Coord s, Coord d, FaultModel model,
                                      const DecideOptions& opts = {}) const;

  /// Like decide(), but report which extension certified and through which
  /// witness node.
  [[nodiscard]] Certificate explain(Coord s, Coord d, FaultModel model,
                                    const DecideOptions& opts = {}) const;

  /// Execute a certificate: single-phase for BaseSafe, two-phase through
  /// the witness otherwise. Returns SourceBlocked-style failure for a
  /// Method::None certificate.
  [[nodiscard]] route::RouteResult route_certified(
      Coord s, Coord d, const Certificate& cert,
      route::InfoPolicy policy = route::InfoPolicy::BoundaryInfo, Rng* rng = nullptr) const;

  /// Evaluate one of the paper's combined strategies.
  [[nodiscard]] cond::Decision decide_strategy(Coord s, Coord d, FaultModel model,
                                               cond::StrategyId id,
                                               std::span<const Coord> pivots,
                                               const cond::StrategyConfig& cfg = {}) const;

  /// Same, but driven by the decide()-style options: the StrategyConfig is
  /// derived from `opts` (segment size) and `opts.pivots` is the pivot set,
  /// so callers configure one struct for both entry points.
  [[nodiscard]] cond::Decision decide_strategy(Coord s, Coord d, FaultModel model,
                                               cond::StrategyId id,
                                               const DecideOptions& opts) const;

  /// Wu-protocol routing over the faulty-block model.
  [[nodiscard]] route::RouteResult route(
      Coord s, Coord d, route::InfoPolicy policy = route::InfoPolicy::BoundaryInfo,
      Rng* rng = nullptr) const;

  /// Two-phase routing through `via` (neighbor, axis node, or pivot from a
  /// decide() certificate).
  [[nodiscard]] route::RouteResult route_via(
      Coord s, Coord via, Coord d, route::InfoPolicy policy = route::InfoPolicy::BoundaryInfo,
      Rng* rng = nullptr) const;

  /// Ground truth: does a minimal path avoiding the *faulty nodes* exist?
  [[nodiscard]] bool minimal_path_exists(Coord s, Coord d) const;

  /// Batched ground truth: minimal_path_exists(s, d) for every d in one
  /// O(area) pass (cond::monotone_reachability against the faulty mask).
  [[nodiscard]] Grid<bool> minimal_reachability(Coord s) const;

 private:
  struct Derived;
  [[nodiscard]] const Derived& derived() const;

  Mesh2D mesh_;
  fault::FaultSet faults_;
  mutable std::shared_ptr<const Derived> derived_;
};

}  // namespace meshroute
