#include "route/query.hpp"

#include <stdexcept>

#include "cond/wang.hpp"
#include "fault/mcc_model.hpp"

namespace meshroute::route {

const char* to_string(QueryModel model) noexcept {
  switch (model) {
    case QueryModel::FaultyBlock: return "faulty-block";
    case QueryModel::Mcc: return "mcc";
  }
  return "?";
}

namespace {

[[noreturn]] void missing_plane(const char* what) {
  throw std::invalid_argument(std::string("QueryView: ") + what +
                              " plane is not populated for this query");
}

}  // namespace

const Grid<bool>& QueryView::obstacles(QueryModel model, Quadrant q) const {
  if (model == QueryModel::FaultyBlock) {
    if (fb_mask == nullptr) missing_plane("faulty-block obstacle");
    return *fb_mask;
  }
  if (fault::mcc_kind_for(q) == fault::MccKind::TypeOne) {
    if (mcc1_mask == nullptr) missing_plane("type-one MCC obstacle");
    return *mcc1_mask;
  }
  if (mcc2_mask == nullptr) missing_plane("type-two MCC obstacle");
  return *mcc2_mask;
}

const info::SafetyGrid& QueryView::safety(QueryModel model, Quadrant q) const {
  if (model == QueryModel::FaultyBlock) {
    if (fb_safety == nullptr) missing_plane("faulty-block safety");
    return *fb_safety;
  }
  if (fault::mcc_kind_for(q) == fault::MccKind::TypeOne) {
    if (mcc1_safety == nullptr) missing_plane("type-one MCC safety");
    return *mcc1_safety;
  }
  if (mcc2_safety == nullptr) missing_plane("type-two MCC safety");
  return *mcc2_safety;
}

cond::RoutingProblem QueryView::problem(Coord s, Coord d, QueryModel model) const {
  if (mesh == nullptr) missing_plane("mesh");
  const Quadrant q = quadrant_of(s, d);
  return {mesh, &obstacles(model, q), &safety(model, q), s, d};
}

StaticFaultView QueryView::fault_view() const {
  if (blocks == nullptr) missing_plane("block");
  return StaticFaultView(*blocks, boundary);
}

cond::Decision decide_strategy(const QueryView& view, Coord s, Coord d, QueryModel model,
                               cond::StrategyId id, std::span<const Coord> pivots,
                               const cond::StrategyConfig& cfg) {
  return cond::run_strategy(view.problem(s, d, model), id, cfg, pivots);
}

void decide_batch(const QueryView& view, std::span<const QuerySpec> specs, QueryModel model,
                  cond::StrategyId id, std::span<const Coord> pivots,
                  const cond::StrategyConfig& cfg, std::vector<cond::Decision>& out) {
  out.clear();
  out.reserve(specs.size());
  for (const QuerySpec& q : specs) {
    out.push_back(decide_strategy(view, q.src, q.dst, model, id, pivots, cfg));
  }
}

bool minimal_path_exists(const QueryView& view, Coord s, Coord d) {
  if (view.mesh == nullptr || view.faulty_mask == nullptr) {
    throw std::invalid_argument("QueryView: faulty-mask plane is not populated");
  }
  return cond::monotone_path_exists(*view.mesh, *view.faulty_mask, s, d);
}

void minimal_reachability(const QueryView& view, Coord s, Grid<bool>& out) {
  if (view.mesh == nullptr || view.faulty_mask == nullptr) {
    throw std::invalid_argument("QueryView: faulty-mask plane is not populated");
  }
  cond::monotone_reachability(*view.mesh, *view.faulty_mask, s, out);
}

RouteResult route(const QueryView& view, Coord s, Coord d, InfoPolicy policy, Rng* rng) {
  if (view.mesh == nullptr || view.blocks == nullptr) {
    throw std::invalid_argument("QueryView: block plane is not populated");
  }
  const MinimalRouter router(*view.mesh, *view.blocks, view.boundary, policy);
  return router.route(s, d, rng);
}

LadderResult route_ladder(const QueryView& view, Coord s, Coord d, const LadderOptions& opts,
                          Rng* rng) {
  const StaticFaultView fv = view.fault_view();
  return route_degradation_ladder(*view.mesh, fv, s, d, opts, rng);
}

void route_batch(const QueryView& view, std::span<const QuerySpec> specs,
                 const LadderOptions& opts, std::vector<RouteAnswer>& out) {
  const StaticFaultView fv = view.fault_view();
  route_batch(*view.mesh, fv, specs, opts, out);
}

void route_batch(const Mesh2D& mesh, const FaultView& view, std::span<const QuerySpec> specs,
                 const LadderOptions& opts, std::vector<RouteAnswer>& out) {
  out.clear();
  out.reserve(specs.size());
  for (const QuerySpec& q : specs) {
    const LadderResult r = route_degradation_ladder(mesh, view, q.src, q.dst, opts,
                                                    /*rng=*/nullptr);
    const RouteStatus attr = r.escalations.empty() ? r.status : r.escalations.front().reason;
    out.push_back(RouteAnswer{r.status, r.rung, r.stats, attr});
  }
}

}  // namespace meshroute::route
