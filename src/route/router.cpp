#include "route/router.hpp"

#include <stdexcept>

#include "cond/wang.hpp"
#include "mesh/frame.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace meshroute::route {
namespace {

/// Pick between two admissible preferred moves: random when rng given,
/// otherwise along the dimension with more remaining distance (balances the
/// remaining rectangle, a common adaptive heuristic).
bool pick_first(Coord rel_after_first, Coord rel_after_second, Rng* rng) {
  if (rng != nullptr) return rng->chance(0.5);
  const Dist slack_first = std::max(rel_after_first.x, rel_after_first.y);
  const Dist slack_second = std::max(rel_after_second.x, rel_after_second.y);
  return slack_first <= slack_second;
}

}  // namespace

const char* to_string(RouteStatus status) noexcept {
  switch (status) {
    case RouteStatus::Delivered: return "delivered";
    case RouteStatus::Stuck: return "stuck";
    case RouteStatus::SourceBlocked: return "source_blocked";
    case RouteStatus::EnteredNewFault: return "entered_new_fault";
    case RouteStatus::InfoStale: return "info_stale";
    case RouteStatus::TtlExceeded: return "ttl_exceeded";
  }
  return "unknown";
}

MinimalRouter::MinimalRouter(const Mesh2D& mesh, const fault::BlockSet& blocks,
                             const info::BoundaryInfoMap* boundary, InfoPolicy policy)
    : mesh_(mesh), blocks_(blocks), boundary_(boundary), policy_(policy) {
  if (policy_ != InfoPolicy::GlobalInfo && boundary_ == nullptr) {
    throw std::invalid_argument("MinimalRouter: this policy requires a BoundaryInfoMap");
  }
}

std::vector<Rect> MinimalRouter::known_rects(Coord at) const {
  std::vector<Rect> rects;
  if (policy_ == InfoPolicy::GlobalInfo) {
    rects.reserve(blocks_.block_count());
    for (const auto& b : blocks_.blocks()) rects.push_back(b.rect);
    return rects;
  }
  for (const std::int32_t id : boundary_->known_blocks(at)) {
    rects.push_back(blocks_.blocks()[static_cast<std::size_t>(id)].rect);
  }
  return rects;
}

RouteResult MinimalRouter::route(Coord s, Coord d, Rng* rng) const {
  static obs::Counter& walks_ctr = obs::Registry::global().counter("route.minimal.walks");
  static obs::Counter& delivered_ctr =
      obs::Registry::global().counter("route.minimal.delivered");
  static obs::Counter& hops_ctr = obs::Registry::global().counter("route.minimal.hops");

  RouteResult result;
  const auto finish = [&]() -> RouteResult& {
    walks_ctr.add(1);
    if (result.delivered()) delivered_ctr.add(1);
    if (!result.path.hops.empty()) {
      hops_ctr.add(static_cast<std::int64_t>(result.path.hops.size()) - 1);
    }
    return result;
  };
  if (!mesh_.in_bounds(s) || !mesh_.in_bounds(d) || blocks_.is_block_node(s) ||
      blocks_.is_block_node(d)) {
    result.status = RouteStatus::SourceBlocked;
    return finish();
  }
  result.path.hops.push_back(s);

  Coord cur = s;
  while (cur != d) {
    const QuadrantFrame frame(cur, d);
    const Coord rel = frame.to_frame(d);
    const std::vector<Rect> known = known_rects(cur);

    // Literal single-block reading of the L1/L3 shadow rules (ablation
    // policy): a position is dead w.r.t. one block when the destination sits
    // in that block's north (resp. east) shadow and the position can no
    // longer pass on the open side. Evaluated block by block, without
    // composing the joint barrier.
    const auto dead_by_single_block = [&](Coord v) {
      const Coord q = frame.to_frame(v);
      for (const Rect& r : known) {
        const Coord a = frame.to_frame({r.xmin, r.ymin});
        const Coord b = frame.to_frame({r.xmax, r.ymax});
        const Rect bf{std::min(a.x, b.x), std::max(a.x, b.x), std::min(a.y, b.y),
                      std::max(a.y, b.y)};
        if (bf.contains(q)) return true;
        const bool north_shadow = rel.y > bf.ymax && rel.x <= bf.xmax && rel.x >= bf.xmin;
        if (north_shadow && q.x >= bf.xmin && q.y <= bf.ymax) return true;
        const bool east_shadow = rel.x > bf.xmax && rel.y <= bf.ymax && rel.y >= bf.ymin;
        if (east_shadow && q.y >= bf.ymin && q.x <= bf.xmax) return true;
      }
      return false;
    };

    // A candidate is admissible when the node is physically usable (1-hop
    // sensing: not a block node) and, per the blocks known here, a monotone
    // completion from it still exists.
    const auto admissible = [&](Coord v) {
      if (!mesh_.in_bounds(v) || blocks_.is_block_node(v)) return false;
      if (policy_ == InfoPolicy::SingleBlockShadow) return !dead_by_single_block(v);
      return cond::monotone_path_exists_rects(known, v, d);
    };

    std::optional<Coord> move_x;
    std::optional<Coord> move_y;
    if (rel.x >= 1) {
      const Coord v = neighbor(cur, frame.to_mesh_dir(Direction::East));
      if (admissible(v)) move_x = v;
    }
    if (rel.y >= 1) {
      const Coord v = neighbor(cur, frame.to_mesh_dir(Direction::North));
      if (admissible(v)) move_y = v;
    }

    Coord next;
    if (move_x && move_y) {
      const Coord after_x = Coord{rel.x - 1, rel.y};
      const Coord after_y = Coord{rel.x, rel.y - 1};
      next = pick_first(after_x, after_y, rng) ? *move_x : *move_y;
    } else if (move_x) {
      next = *move_x;
    } else if (move_y) {
      next = *move_y;
    } else {
      result.status = RouteStatus::Stuck;
      return finish();
    }
    result.path.hops.push_back(next);
    cur = next;
    MESHROUTE_TRACE_EVENT(obs::EventKind::RouteHop, 0,
                          static_cast<std::int64_t>(result.path.hops.size()) - 1, next,
                          static_cast<std::int64_t>(result.path.hops.size()) - 1, 0);
  }
  result.status = RouteStatus::Delivered;
  return finish();
}

RouteResult MinimalRouter::route_via(Coord s, Coord via, Coord d, Rng* rng) const {
  RouteResult first = route(s, via, rng);
  if (!first.delivered()) return first;
  RouteResult second = route(via, d, rng);
  if (!second.delivered()) {
    // Keep the combined walk for diagnostics.
    first.path.hops.insert(first.path.hops.end(), second.path.hops.begin() + 1,
                           second.path.hops.end());
    first.status = second.status;
    return first;
  }
  first.path.hops.insert(first.path.hops.end(), second.path.hops.begin() + 1,
                         second.path.hops.end());
  first.status = RouteStatus::Delivered;
  return first;
}

RouteResult route_shortest_bfs(const Mesh2D& mesh, const Grid<bool>& blocked, Coord s,
                               Coord d) {
  RouteResult result;
  if (!mesh.in_bounds(s) || !mesh.in_bounds(d) || blocked[s] || blocked[d]) {
    result.status = RouteStatus::SourceBlocked;
    return result;
  }
  // Standard BFS with parent pointers encoded as the direction taken INTO
  // each node (kNoParent = unvisited, source marked specially).
  constexpr std::int8_t kNoParent = -1;
  constexpr std::int8_t kSource = 4;
  Grid<std::int8_t> parent(mesh.width(), mesh.height(), kNoParent);
  parent[s] = kSource;
  std::vector<Coord> frontier{s};
  bool found = s == d;
  while (!frontier.empty() && !found) {
    std::vector<Coord> next;
    for (const Coord c : frontier) {
      for (const Direction dir : kAllDirections) {
        const Coord v = neighbor(c, dir);
        if (!mesh.in_bounds(v) || blocked[v] || parent[v] != kNoParent) continue;
        parent[v] = static_cast<std::int8_t>(dir);
        if (v == d) {
          found = true;
          break;
        }
        next.push_back(v);
      }
      if (found) break;
    }
    frontier = std::move(next);
  }
  if (!found) {
    result.status = RouteStatus::Stuck;
    return result;
  }
  // Walk back from the destination.
  std::vector<Coord> reversed{d};
  Coord cur = d;
  while (cur != s) {
    cur = neighbor(cur, opposite(static_cast<Direction>(parent[cur])));
    reversed.push_back(cur);
  }
  result.path.hops.assign(reversed.rbegin(), reversed.rend());
  result.status = RouteStatus::Delivered;
  return result;
}

RouteResult route_dimension_order(const Mesh2D& mesh, const Grid<bool>& blocked, Coord s,
                                  Coord d) {
  RouteResult result;
  if (!mesh.in_bounds(s) || !mesh.in_bounds(d) || blocked[s] || blocked[d]) {
    result.status = RouteStatus::SourceBlocked;
    return result;
  }
  result.path.hops.push_back(s);
  Coord cur = s;
  while (cur != d) {
    Coord next = cur;
    if (cur.x != d.x) {
      next.x += cur.x < d.x ? 1 : -1;
    } else {
      next.y += cur.y < d.y ? 1 : -1;
    }
    if (blocked[next]) {
      result.status = RouteStatus::Stuck;
      return result;
    }
    result.path.hops.push_back(next);
    cur = next;
  }
  result.status = RouteStatus::Delivered;
  return result;
}

RouteResult route_greedy_global(const Mesh2D& mesh, const Grid<bool>& blocked, Coord s, Coord d,
                                Rng* rng) {
  RouteResult result;
  if (!mesh.in_bounds(s) || !mesh.in_bounds(d) || blocked[s] || blocked[d]) {
    result.status = RouteStatus::SourceBlocked;
    return result;
  }
  result.path.hops.push_back(s);
  Coord cur = s;
  while (cur != d) {
    const QuadrantFrame frame(cur, d);
    const Coord rel = frame.to_frame(d);
    const auto admissible = [&](Coord v) {
      return mesh.in_bounds(v) && !blocked[v] && cond::monotone_path_exists(mesh, blocked, v, d);
    };
    std::optional<Coord> move_x;
    std::optional<Coord> move_y;
    if (rel.x >= 1) {
      const Coord v = neighbor(cur, frame.to_mesh_dir(Direction::East));
      if (admissible(v)) move_x = v;
    }
    if (rel.y >= 1) {
      const Coord v = neighbor(cur, frame.to_mesh_dir(Direction::North));
      if (admissible(v)) move_y = v;
    }
    Coord next;
    if (move_x && move_y) {
      next = pick_first({rel.x - 1, rel.y}, {rel.x, rel.y - 1}, rng) ? *move_x : *move_y;
    } else if (move_x) {
      next = *move_x;
    } else if (move_y) {
      next = *move_y;
    } else {
      result.status = RouteStatus::Stuck;
      return result;
    }
    result.path.hops.push_back(next);
    cur = next;
  }
  result.status = RouteStatus::Delivered;
  return result;
}

}  // namespace meshroute::route
