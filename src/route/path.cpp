#include "route/path.hpp"

#include <unordered_set>

namespace meshroute::route {

bool path_is_connected(const Mesh2D& mesh, const Path& path) {
  if (path.hops.empty()) return false;
  if (!mesh.in_bounds(path.hops.front())) return false;
  for (std::size_t i = 1; i < path.hops.size(); ++i) {
    if (!mesh.in_bounds(path.hops[i])) return false;
    if (manhattan(path.hops[i - 1], path.hops[i]) != 1) return false;
  }
  return true;
}

bool path_avoids(const Grid<bool>& blocked, const Path& path) {
  for (const Coord c : path.hops) {
    if (!blocked.in_bounds(c) || blocked[c]) return false;
  }
  return true;
}

bool path_is_minimal(const Path& path) {
  if (path.hops.empty()) return false;
  return path.length() == manhattan(path.source(), path.destination());
}

bool path_is_sub_minimal(const Path& path) {
  if (path.hops.empty()) return false;
  return path.length() == manhattan(path.source(), path.destination()) + 2;
}

bool path_is_simple(const Path& path) {
  std::unordered_set<Coord> seen;
  for (const Coord c : path.hops) {
    if (!seen.insert(c).second) return false;
  }
  return true;
}

}  // namespace meshroute::route
