#include "route/ladder.hpp"

#include <algorithm>
#include <optional>

#include "cond/wang.hpp"
#include "common/grid.hpp"
#include "mesh/frame.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace meshroute::route {
namespace {

/// Identical to router.cpp's tie-break — the rung-0 differential contract
/// requires the same choice AND the same rng draw per two-way tie.
bool pick_first(Coord rel_after_first, Coord rel_after_second, Rng* rng) {
  if (rng != nullptr) return rng->chance(0.5);
  const Dist slack_first = std::max(rel_after_first.x, rel_after_first.y);
  const Dist slack_second = std::max(rel_after_second.x, rel_after_second.y);
  return slack_first <= slack_second;
}

}  // namespace

const char* to_string(Rung rung) noexcept {
  switch (rung) {
    case Rung::Minimal: return "minimal";
    case Rung::SpareDetour: return "spare_detour";
    case Rung::BoundedMisroute: return "bounded_misroute";
  }
  return "unknown";
}

LadderResult route_degradation_ladder(const Mesh2D& mesh, const FaultView& view, Coord s,
                                      Coord d, const LadderOptions& opts, Rng* rng) {
  // Registry lookups are a map walk under a mutex; resolve once per process,
  // then flush per walk (not per hop) so the hot loop only touches locals.
  static obs::Counter& walks_ctr = obs::Registry::global().counter("route.ladder.walks");
  static obs::Counter& delivered_ctr =
      obs::Registry::global().counter("route.ladder.delivered");
  static obs::Counter& hops_ctr = obs::Registry::global().counter("route.ladder.hops");
  static obs::Counter& detours_ctr = obs::Registry::global().counter("route.ladder.detours");
  static obs::Counter& escalations_ctr =
      obs::Registry::global().counter("route.ladder.escalations");

  LadderResult result;
  std::int64_t t = opts.start_time;
  result.end_time = t;

  const auto finish = [&]() -> LadderResult& {
    result.stats.hops = static_cast<int>(result.path.hops.size()) -
                        (result.path.hops.empty() ? 0 : 1);
    result.stats.detours = result.detours;
    result.stats.escalations = static_cast<int>(result.escalations.size());
    walks_ctr.add(1);
    if (result.delivered()) delivered_ctr.add(1);
    hops_ctr.add(result.stats.hops);
    detours_ctr.add(result.stats.detours);
    escalations_ctr.add(result.stats.escalations);
    return result;
  };

  if (!mesh.in_bounds(s) || !mesh.in_bounds(d) || view.truly_bad(s, t) ||
      view.truly_bad(d, t)) {
    result.status = RouteStatus::SourceBlocked;
    return finish();
  }

  const int ttl = opts.ttl > 0 ? opts.ttl : 4 * (manhattan(s, d) + 8);
  Grid<std::int16_t> visits(mesh.width(), mesh.height(), 0);
  std::vector<Rect> believed;
  result.path.hops.push_back(s);

  Coord cur = s;
  Coord prev = s;  // == cur means "no previous hop yet"
  int hops = 0;
  int detour_budget = 1;  // rung 1 permits exactly one spare-neighbor detour
  bool misroute_engaged = false;
  ++visits[cur];

  const auto fail = [&](RouteStatus reason) {
    result.status = reason;
    result.end_time = t;
  };
  const auto take = [&](Coord v) {
    if (manhattan(v, d) >= manhattan(cur, d)) ++result.detours;
    result.path.hops.push_back(v);
    ++hops;
    ++t;
    prev = cur;
    cur = v;
    ++visits[v];
    MESHROUTE_TRACE_EVENT(obs::EventKind::RouteHop, opts.trace_track, t, v, hops,
                          static_cast<int>(result.rung));
  };

  while (cur != d) {
    // The world moves under the packet: a fault firing on the occupied node
    // destroys it; one firing on the destination makes delivery impossible.
    if (view.truly_bad(cur, t) || view.truly_bad(d, t)) {
      fail(RouteStatus::EnteredNewFault);
      return finish();
    }
    if (hops >= ttl) {
      fail(RouteStatus::TtlExceeded);
      return finish();
    }
    view.believed_blocks(cur, t, believed);

    const QuadrantFrame frame(cur, d);
    const Coord rel = frame.to_frame(d);
    const auto usable = [&](Coord v) { return mesh.in_bounds(v) && !view.truly_bad(v, t); };
    const auto completes = [&](Coord v) {
      return cond::monotone_path_exists_rects(believed, v, d);
    };

    // Rung 0 step — Wu's protocol, verbatim from MinimalRouter::route.
    std::optional<Coord> move_x;
    std::optional<Coord> move_y;
    if (rel.x >= 1) {
      const Coord v = neighbor(cur, frame.to_mesh_dir(Direction::East));
      if (usable(v) && completes(v)) move_x = v;
    }
    if (rel.y >= 1) {
      const Coord v = neighbor(cur, frame.to_mesh_dir(Direction::North));
      if (usable(v) && completes(v)) move_y = v;
    }
    if (move_x && move_y) {
      take(pick_first({rel.x - 1, rel.y}, {rel.x, rel.y - 1}, rng) ? *move_x : *move_y);
      continue;
    }
    if (move_x || move_y) {
      take(move_x ? *move_x : *move_y);
      continue;
    }

    // This rung is stuck here. Name the reason before climbing.
    const RouteStatus reason =
        view.is_stale(cur, t) ? RouteStatus::InfoStale : RouteStatus::Stuck;

    // Rung 1 — one spare-neighbor detour (Extension 1): a sub-minimal hop to
    // any usable neighbor that restores a believed monotone completion.
    // Deterministic choice: closest-to-destination, then (E, S, W, N) order.
    if (opts.max_rung >= Rung::SpareDetour && detour_budget > 0) {
      std::optional<Coord> spare;
      for (const Direction dir : kAllDirections) {
        const Coord v = neighbor(cur, dir);
        if (!usable(v) || v == prev || !completes(v)) continue;
        if (!spare || manhattan(v, d) < manhattan(*spare, d)) spare = v;
      }
      if (spare) {
        result.escalations.push_back(Escalation{result.rung, reason, cur, t});
        MESHROUTE_TRACE_EVENT(obs::EventKind::RungEscalation, opts.trace_track, t, cur,
                              static_cast<int>(result.rung), static_cast<int>(reason));
        result.rung = std::max(result.rung, Rung::SpareDetour);
        --detour_budget;
        take(*spare);
        continue;
      }
    }

    // Rung 2 — bounded misroute: any usable neighbor, believed-safe moves
    // first, then distance-reducing, avoiding immediate backtracks and
    // nodes already revisited max_revisits times (loop/livelock detection).
    if (opts.max_rung >= Rung::BoundedMisroute) {
      if (!misroute_engaged) {
        result.escalations.push_back(Escalation{result.rung, reason, cur, t});
        MESHROUTE_TRACE_EVENT(obs::EventKind::RungEscalation, opts.trace_track, t, cur,
                              static_cast<int>(result.rung), static_cast<int>(reason));
        result.rung = Rung::BoundedMisroute;
        misroute_engaged = true;
      }
      std::optional<Coord> best;
      const auto score = [&](Coord v) {
        return std::make_pair(completes(v) ? 0 : 1, manhattan(v, d));
      };
      for (const bool allow_backtrack : {false, true}) {
        for (const Direction dir : kAllDirections) {
          const Coord v = neighbor(cur, dir);
          if (!usable(v) || visits[v] > opts.max_revisits) continue;
          if (!allow_backtrack && v == prev && prev != cur) continue;
          if (!best || score(v) < score(*best)) best = v;
        }
        if (best) break;
      }
      if (best) {
        take(*best);
        continue;
      }
    }

    fail(reason);
    return finish();
  }

  result.status = RouteStatus::Delivered;
  result.end_time = t;
  return finish();
}

}  // namespace meshroute::route
