// The consolidated public query API (one header for the whole read path).
//
// Before this header the query surface was scattered: decide_strategy and
// minimal_reachability lived on the mutable core::FaultTolerantMesh facade,
// degradation-ladder routing took a FaultView directly, and the raw
// cond::monotone_reachability oracle took ad-hoc grids. Every one of those
// entry points is a pure function of derived fault information, so they all
// collapse onto one read-side bundle:
//
//   route::QueryView — const pointers to every plane a query consumes
//     (masks, safety grids, blocks, boundary deposits). Producers:
//       core::FaultTolerantMesh::query_view()   (live mesh, lazily derived)
//       serve::RoutingSnapshot::query_view()    (immutable epoch snapshot)
//       experiment::Trial::query_view()         (bench trial state)
//
// All functions here are const, allocation-free (given an out-buffer), and
// thread-safe over a shared QueryView — the property the epoch-snapshotted
// query server (src/serve) is built on. The direct query methods on the
// mutable facade remain for convenience but are deprecated for new call
// sites (see DESIGN §11); benches and the CLI route through this header.
//
// route::FaultView (ladder.hpp) stays the single *time-varying* read-side
// abstraction: QueryView::fault_view() adapts the frozen world onto it, so
// the ladder never takes ad-hoc grids.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/coord.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "cond/conditions.hpp"
#include "cond/strategies.hpp"
#include "fault/block_model.hpp"
#include "info/boundary.hpp"
#include "info/safety_level.hpp"
#include "mesh/mesh2d.hpp"
#include "route/ladder.hpp"
#include "route/router.hpp"

namespace meshroute::route {

/// Which fault model a query runs under. Mirrors core's FaultModel (the
/// facade aliases it) without making route depend on the facade.
enum class QueryModel : std::uint8_t { FaultyBlock = 0, Mcc = 1 };

[[nodiscard]] const char* to_string(QueryModel model) noexcept;

/// The read-side bundle: non-owning const pointers into derived fault state.
/// A QueryView is 11 pointers — pass it by value. The producer guarantees
/// every plane was computed against the same fault set; all planes except
/// the optional ones must be non-null.
///
/// Optional members:
///   boundary     — null means global information at every node (the router
///                  and ladder then see the whole block list everywhere).
///   mcc2_*       — null means type-two MCC planes were not built; Mcc-model
///                  queries into quadrants II/IV then throw. Producers that
///                  only serve quadrant-I destinations (experiment::Trial)
///                  leave them null.
struct QueryView {
  const Mesh2D* mesh = nullptr;
  const fault::BlockSet* blocks = nullptr;
  const info::BoundaryInfoMap* boundary = nullptr;
  const Grid<bool>* faulty_mask = nullptr;  ///< truly faulty nodes (ground truth)
  const Grid<bool>* fb_mask = nullptr;
  const info::SafetyGrid* fb_safety = nullptr;
  const Grid<bool>* mcc1_mask = nullptr;
  const info::SafetyGrid* mcc1_safety = nullptr;
  const Grid<bool>* mcc2_mask = nullptr;
  const info::SafetyGrid* mcc2_safety = nullptr;

  /// Obstacle mask / safety grid serving (model, quadrant). Throws
  /// std::invalid_argument when the needed plane is null.
  [[nodiscard]] const Grid<bool>& obstacles(QueryModel model, Quadrant q) const;
  [[nodiscard]] const info::SafetyGrid& safety(QueryModel model, Quadrant q) const;

  /// A cond::RoutingProblem wired to the planes serving quadrant_of(s, d).
  [[nodiscard]] cond::RoutingProblem problem(Coord s, Coord d, QueryModel model) const;

  /// The frozen-world FaultView over this bundle (truth = blocks, belief =
  /// boundary deposits or the whole list). The adapter borrows `blocks` and
  /// `boundary`; keep the producer alive for the adapter's lifetime.
  [[nodiscard]] StaticFaultView fault_view() const;
};

/// One (source, destination) query of a batch.
struct QuerySpec {
  Coord src;
  Coord dst;
};

/// Per-query outcome of route_batch: the ladder result minus the path.
struct RouteAnswer {
  RouteStatus status = RouteStatus::Stuck;
  Rung rung = Rung::Minimal;       ///< highest rung engaged
  RouteStats stats;                ///< hops / detours / escalations
  /// Why degradation was engaged: the first escalation's reason (InfoStale
  /// when a rung was abandoned under a stale view), or `status` when the
  /// walk never escalated. The serve layer's DEGRADED replies surface this.
  RouteStatus attribution = RouteStatus::Delivered;
};

// ---- Decision queries -----------------------------------------------------

/// Evaluate one of the paper's combined strategies (Section 5) against the
/// view. Bit-identical to core::FaultTolerantMesh::decide_strategy on the
/// same fault set.
[[nodiscard]] cond::Decision decide_strategy(const QueryView& view, Coord s, Coord d,
                                             QueryModel model, cond::StrategyId id,
                                             std::span<const Coord> pivots,
                                             const cond::StrategyConfig& cfg = {});

/// decide_strategy over a batch of pairs, one view dereference for the whole
/// span. `out` is overwritten (resized to specs.size()); answers are
/// positionally aligned with `specs` and independent of evaluation order.
void decide_batch(const QueryView& view, std::span<const QuerySpec> specs, QueryModel model,
                  cond::StrategyId id, std::span<const Coord> pivots,
                  const cond::StrategyConfig& cfg, std::vector<cond::Decision>& out);

// ---- Ground-truth oracle --------------------------------------------------

/// Does a minimal path avoiding the truly faulty nodes exist?
[[nodiscard]] bool minimal_path_exists(const QueryView& view, Coord s, Coord d);

/// Batched ground truth: minimal_path_exists(view, s, d) for every d in one
/// four-quadrant O(area) DP pass. Writes into a caller-owned grid (resized
/// only on dimension mismatch) — zero allocations in steady state.
void minimal_reachability(const QueryView& view, Coord s, Grid<bool>& out);

// ---- Routing --------------------------------------------------------------

/// Wu-protocol minimal routing over the view's frozen world.
[[nodiscard]] RouteResult route(const QueryView& view, Coord s, Coord d,
                                InfoPolicy policy = InfoPolicy::BoundaryInfo,
                                Rng* rng = nullptr);

/// Degradation-ladder routing over the view's frozen world (rung 0 over a
/// QueryView reproduces route() hop for hop; see ladder.hpp).
[[nodiscard]] LadderResult route_ladder(const QueryView& view, Coord s, Coord d,
                                        const LadderOptions& opts = {}, Rng* rng = nullptr);

/// Ladder routing over a batch of pairs. Deterministic: no RNG is consulted
/// (rung-0 two-way ties break toward the dimension with more remaining
/// distance), so answers depend only on (view, spec) — the property the
/// serve layer's cross-thread bit-identity rests on. `out` is overwritten.
void route_batch(const QueryView& view, std::span<const QuerySpec> specs,
                 const LadderOptions& opts, std::vector<RouteAnswer>& out);

/// Same batch walk over an explicit FaultView (the serve layer's staleness
/// guard routes through a stale-marked decorator here so every escalation
/// is attributed InfoStale). Determinism contract is unchanged: no RNG.
void route_batch(const Mesh2D& mesh, const FaultView& view, std::span<const QuerySpec> specs,
                 const LadderOptions& opts, std::vector<RouteAnswer>& out);

}  // namespace meshroute::route
