// Paths and their validation: connectivity, fault avoidance, minimality and
// sub-minimality. Tests and benchmarks judge every router through these
// predicates rather than trusting the router's own bookkeeping.
#pragma once

#include <vector>

#include "common/coord.hpp"
#include "common/grid.hpp"
#include "mesh/mesh2d.hpp"

namespace meshroute::route {

/// A hop-by-hop path including both endpoints.
struct Path {
  std::vector<Coord> hops;

  [[nodiscard]] bool empty() const noexcept { return hops.empty(); }
  [[nodiscard]] Dist length() const noexcept {
    return hops.empty() ? 0 : static_cast<Dist>(hops.size() - 1);
  }
  [[nodiscard]] Coord source() const { return hops.front(); }
  [[nodiscard]] Coord destination() const { return hops.back(); }
};

/// Every consecutive pair is a mesh link and all hops are in bounds.
[[nodiscard]] bool path_is_connected(const Mesh2D& mesh, const Path& path);

/// No hop touches a node where `blocked` is true.
[[nodiscard]] bool path_avoids(const Grid<bool>& blocked, const Path& path);

/// Path length equals the Manhattan distance between its endpoints.
[[nodiscard]] bool path_is_minimal(const Path& path);

/// Path length equals Manhattan distance + 2 (exactly one detour) — the
/// paper's sub-minimal path.
[[nodiscard]] bool path_is_sub_minimal(const Path& path);

/// No node visited twice.
[[nodiscard]] bool path_is_simple(const Path& path);

}  // namespace meshroute::route
