// Wu's protocol: hop-by-hop minimal routing driven by the faulty-block
// information stored at the node a packet currently occupies.
//
// The paper states the protocol as two boundary-line rules ("on the left
// section of L1 ... stay on L1"; "on the lower section of L3 ... stay on
// L3"). We implement their locally-rational closure: a preferred move is
// forbidden exactly when, according to the blocks KNOWN AT THE CURRENT NODE,
// no monotone completion would remain from the next node. For a single block
// this reduces to the paper's case analysis (the move would enter the dead
// "shadow" region the L-rules fence off); for joined boundaries it composes
// automatically — the turn-and-join trails deposit every block of a
// composite barrier on the shared staircase, so the fence is evaluated with
// the full barrier in view. Stepping into a block itself is prevented by
// 1-hop adjacency sensing, which every node has.
//
// InfoPolicy::GlobalInfo gives the router the whole block list at every hop
// (the traditional global-information model); it succeeds whenever a minimal
// path exists at all, and serves as the optimality baseline and as a
// differential-testing partner for the boundary-information policy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/coord.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "fault/block_model.hpp"
#include "info/boundary.hpp"
#include "mesh/mesh2d.hpp"
#include "route/path.hpp"

namespace meshroute::route {

enum class InfoPolicy : std::uint8_t {
  BoundaryInfo = 0,  ///< the paper's model: only node-local deposited info
  GlobalInfo = 1,    ///< every node knows every block
  /// Node-local deposited info, but each known block's shadow rule is
  /// applied in isolation (the literal single-block reading of Wu's L1/L3
  /// case analysis, without composing the joint barrier). Provided as an
  /// ablation: it strands packets in traps formed by stacked blocks, which
  /// is precisely what the turn-and-join composition prevents.
  SingleBlockShadow = 2,
};

/// Why a routing attempt ended. The first three cover the frozen-world
/// routers; the rest are produced by the degradation ladder (route/ladder.hpp)
/// when the fault picture changes mid-flight, replacing what would otherwise
/// be a silent Stuck with the actual failure reason.
enum class RouteStatus : std::uint8_t {
  Delivered = 0,
  Stuck = 1,            ///< no preferred move is admissible at some node
  SourceBlocked = 2,    ///< source or destination inside a block
  EnteredNewFault = 3,  ///< a scheduled fault swallowed the packet's node (or the destination)
  InfoStale = 4,        ///< gave up at a node whose fault info lagged the truth
  TtlExceeded = 5,      ///< the bounded-misroute rung ran out of hop budget
};

/// Stable lower-case name ("delivered", "stuck", ...) for logs and JSON.
[[nodiscard]] const char* to_string(RouteStatus status) noexcept;

struct RouteResult {
  RouteStatus status = RouteStatus::Stuck;
  Path path;  ///< hops walked so far (complete path when Delivered)

  [[nodiscard]] bool delivered() const noexcept { return status == RouteStatus::Delivered; }
};

/// Minimal router over the faulty-block model.
class MinimalRouter {
 public:
  /// `boundary` may be null only under GlobalInfo.
  MinimalRouter(const Mesh2D& mesh, const fault::BlockSet& blocks,
                const info::BoundaryInfoMap* boundary, InfoPolicy policy);

  /// Route s -> d taking only preferred (distance-reducing) hops. When two
  /// moves are admissible the tie is broken adaptively: random if `rng` is
  /// given, otherwise toward the dimension with more remaining distance.
  /// Never backtracks: a Stuck result means the guarantee conditions did not
  /// hold at the source (never happens from a safe source — property-tested).
  [[nodiscard]] RouteResult route(Coord s, Coord d, Rng* rng = nullptr) const;

  /// Two-phase routing through `via` (extension 1/2/3 factorizations):
  /// concatenates route(s, via) and route(via, d).
  [[nodiscard]] RouteResult route_via(Coord s, Coord via, Coord d, Rng* rng = nullptr) const;

  [[nodiscard]] InfoPolicy policy() const noexcept { return policy_; }

 private:
  /// Blocks known at `at`, as rectangles (includes blocks adjacent to `at`).
  [[nodiscard]] std::vector<Rect> known_rects(Coord at) const;

  const Mesh2D& mesh_;
  const fault::BlockSet& blocks_;
  const info::BoundaryInfoMap* boundary_;
  InfoPolicy policy_;
};

/// Classic dimension-order (XY) routing: all x hops first, then all y hops,
/// no adaptivity. Gets stuck at the first block in the way — the standard
/// fault-intolerant baseline the faulty-block literature improves on.
[[nodiscard]] RouteResult route_dimension_order(const Mesh2D& mesh, const Grid<bool>& blocked,
                                                Coord s, Coord d);

/// Non-minimal baseline: true shortest path around the obstacle mask (BFS,
/// global information). Delivers whenever source and destination are in the
/// same connected component; the path length quantifies the unavoidable
/// stretch when no minimal path survives the faults — the regime beyond the
/// paper's sub-minimal (one-detour) routing.
[[nodiscard]] RouteResult route_shortest_bfs(const Mesh2D& mesh, const Grid<bool>& blocked,
                                             Coord s, Coord d);

/// Fully-informed greedy minimal router over an arbitrary obstacle mask
/// (works for MCCs too): at every hop takes a preferred move that keeps a
/// monotone completion, per the whole mask. Delivers iff a minimal path
/// exists.
[[nodiscard]] RouteResult route_greedy_global(const Mesh2D& mesh, const Grid<bool>& blocked,
                                              Coord s, Coord d, Rng* rng = nullptr);

}  // namespace meshroute::route
