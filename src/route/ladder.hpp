// The graceful-degradation ladder: routing that survives a fault picture
// changing while the packet is in flight, failing through three rungs
// instead of silently sticking.
//
//   Rung 0, Minimal        — Wu's protocol exactly as MinimalRouter::route:
//                            only distance-reducing hops whose target keeps a
//                            monotone completion per the blocks BELIEVED at
//                            the current node. Capped at this rung over a
//                            frozen FaultView, the ladder is hop-for-hop
//                            (and RNG-draw-for-draw) identical to
//                            MinimalRouter — the differential anchor.
//   Rung 1, SpareDetour    — Extension 1's spare neighbor: when no minimal
//                            move is admissible, one sub-minimal detour hop
//                            to a neighbor that restores a believed monotone
//                            completion, then back to rung 0 (total length
//                            <= D(s,d) + 2 when this rung delivers).
//   Rung 2, BoundedMisroute— fully adaptive: any usable neighbor, preferring
//                            believed-safe then distance-reducing moves,
//                            with a TTL and per-node revisit caps so a
//                            livelock is detected and reported rather than
//                            walked forever.
//
// Every escalation records which rung was abandoned, where, when, and WHY
// (the RouteStatus that rung would have returned), so sweeps can attribute
// delivery and overhead to rungs — the paper's minimal/sub-minimal split
// extended one level further down.
//
// The world is presented through a FaultView: physical truth per tick (what
// 1-hop sensing and packet loss obey) and the possibly-stale block list a
// node believes in. chaos::ChaosEngine implements the time-varying, stale
// view; StaticFaultView freezes the classic BlockSet/BoundaryInfoMap world.
#pragma once

#include <cstdint>
#include <vector>

#include "common/coord.hpp"
#include "common/rect.hpp"
#include "common/rng.hpp"
#include "fault/block_model.hpp"
#include "info/boundary.hpp"
#include "mesh/mesh2d.hpp"
#include "route/path.hpp"
#include "route/router.hpp"

namespace meshroute::route {

/// Per-hop world view for degradation-aware routing. `time` is the hop
/// clock: the ladder advances it by one per hop, and implementations may
/// let both the truth and each node's knowledge depend on it.
class FaultView {
 public:
  virtual ~FaultView() = default;

  /// Physical truth at `time`: is `c` a faulty/disabled (block) node? This
  /// is what 1-hop sensing reports and what destroys a packet standing on a
  /// node when a scheduled fault fires.
  [[nodiscard]] virtual bool truly_bad(Coord c, std::int64_t time) const = 0;

  /// The block rectangles the node at `at` believes in at `time` (may lag
  /// the truth). Overwrites `out`.
  virtual void believed_blocks(Coord at, std::int64_t time, std::vector<Rect>& out) const = 0;

  /// True when the believed picture at (`at`, `time`) is behind the truth —
  /// used to report InfoStale instead of Stuck when a rung gives up.
  [[nodiscard]] virtual bool is_stale(Coord at, std::int64_t time) const = 0;
};

/// Frozen-world adapter over the classic fault structures: truth is the
/// BlockSet, belief is either the whole set (global information) or the
/// node-local BoundaryInfoMap deposits, and nothing ever changes or goes
/// stale. Routing rung 0 over this view reproduces MinimalRouter exactly.
class StaticFaultView final : public FaultView {
 public:
  /// `boundary` may be null (global information at every node).
  StaticFaultView(const fault::BlockSet& blocks, const info::BoundaryInfoMap* boundary)
      : blocks_(blocks), boundary_(boundary) {}

  [[nodiscard]] bool truly_bad(Coord c, std::int64_t /*time*/) const override {
    return blocks_.is_block_node(c);
  }

  void believed_blocks(Coord at, std::int64_t /*time*/,
                       std::vector<Rect>& out) const override {
    out.clear();
    if (boundary_ == nullptr) {
      for (const auto& b : blocks_.blocks()) out.push_back(b.rect);
      return;
    }
    for (const std::int32_t id : boundary_->known_blocks(at)) {
      out.push_back(blocks_.blocks()[static_cast<std::size_t>(id)].rect);
    }
  }

  [[nodiscard]] bool is_stale(Coord /*at*/, std::int64_t /*time*/) const override {
    return false;
  }

 private:
  const fault::BlockSet& blocks_;
  const info::BoundaryInfoMap* boundary_;
};

/// The ladder's rungs, weakest guarantee last.
enum class Rung : std::uint8_t { Minimal = 0, SpareDetour = 1, BoundedMisroute = 2 };

[[nodiscard]] const char* to_string(Rung rung) noexcept;

struct LadderOptions {
  /// Hop budget for the whole walk; 0 = auto (4 * (D(s,d) + 8)).
  int ttl = 0;
  /// Highest rung the ladder may engage (Minimal = plain Wu routing).
  Rung max_rung = Rung::BoundedMisroute;
  /// Hop-clock value at the source.
  std::int64_t start_time = 0;
  /// BoundedMisroute abandons a walk that enters any node more than
  /// 1 + max_revisits times (loop/livelock detection).
  int max_revisits = 2;
  /// Logical trace stream this walk's RouteHop/RungEscalation events carry
  /// (obs::TraceEvent::track). Callers multiplexing many walks into one
  /// obs::TraceSink (a sweep, a CLI run) assign distinct tracks; 0 is fine
  /// for a single walk.
  std::uint64_t trace_track = 0;
};

/// Aggregate walk counts, filled on every ladder return so callers get the
/// numbers without re-deriving them from the path or the trace stream.
struct RouteStats {
  int hops = 0;         ///< hops actually walked (path length)
  int detours = 0;      ///< hops that did not reduce distance
  int escalations = 0;  ///< rungs abandoned along the way

  friend bool operator==(const RouteStats&, const RouteStats&) = default;
};

/// One rung giving up: where, when, and the status it would have returned.
struct Escalation {
  Rung abandoned;
  RouteStatus reason;
  Coord at;
  std::int64_t time = 0;
};

struct LadderResult {
  RouteStatus status = RouteStatus::Stuck;
  Path path;                           ///< hops walked (complete when Delivered)
  Rung rung = Rung::Minimal;           ///< highest rung engaged
  std::vector<Escalation> escalations; ///< one entry per rung abandoned
  int detours = 0;                     ///< hops that did not reduce distance
  std::int64_t end_time = 0;           ///< hop clock at termination
  RouteStats stats;                    ///< aggregate counts, filled on every return

  [[nodiscard]] bool delivered() const noexcept { return status == RouteStatus::Delivered; }
};

/// Walk s -> d through `view`, climbing the ladder as rungs fail. `rng` is
/// only consulted for rung-0 two-way ties, with the same draw sequence as
/// MinimalRouter::route; all degradation choices are deterministic.
[[nodiscard]] LadderResult route_degradation_ladder(const Mesh2D& mesh, const FaultView& view,
                                                    Coord s, Coord d,
                                                    const LadderOptions& opts = {},
                                                    Rng* rng = nullptr);

}  // namespace meshroute::route
