#include "analysis/theorem2.hpp"

#include <cmath>
#include <stdexcept>

namespace meshroute::analysis {

int expected_affected_rows(int n, int k) {
  if (n <= 0) throw std::invalid_argument("expected_affected_rows: n must be positive");
  if (k <= 0) return 0;
  double sum = 0.0;
  double best_gap = static_cast<double>(k);  // x = 0 gives |k - 0|
  int best_x = 0;
  for (int x = 1; x <= n; ++x) {
    sum += static_cast<double>(n) / static_cast<double>(n - x + 1);
    const double gap = std::abs(static_cast<double>(k) - sum);
    if (gap < best_gap) {
      best_gap = gap;
      best_x = x;
    }
    if (sum > k && gap > best_gap) break;  // sums only grow; past the minimum
  }
  return best_x;
}

double expected_affected_fraction(int n, int k) {
  return static_cast<double>(expected_affected_rows(n, k)) / static_cast<double>(n);
}

double smooth_expected_affected_rows(int n, int k) {
  if (n <= 0) throw std::invalid_argument("smooth_expected_affected_rows: n must be positive");
  if (k <= 0) return 0.0;
  const double p = 1.0 - 1.0 / static_cast<double>(n);
  return static_cast<double>(n) * (1.0 - std::pow(p, k));
}

}  // namespace meshroute::analysis
