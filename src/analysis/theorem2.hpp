// Theorem 2: the analytical model for the expected number of affected rows
// (equivalently columns) in an n x n mesh with k randomly placed faults.
//
// Faults are partitioned into stages by "hits" (a fault landing on a
// previously clean row); the i-th stage's fault count is geometric with mean
// n / (n - i + 1), so the expected number of affected rows is the x
// minimizing | k - sum_{i=1..x} n/(n-i+1) |.
#pragma once

namespace meshroute::analysis {

/// Expected number of affected rows per Theorem 2. Returns a value in
/// [0, n]. k = 0 gives 0.
[[nodiscard]] int expected_affected_rows(int n, int k);

/// Same, as a fraction of n (the paper's Figure 7 y-axis).
[[nodiscard]] double expected_affected_fraction(int n, int k);

/// The closed-form coupon-collector style expectation E[x] solving
/// k = sum_{i=1..x} n/(n-i+1) continuously — a smooth companion curve
/// equal to n * (1 - (1 - 1/n)^k) in expectation over placements; provided
/// for comparison in the Figure 7 bench.
[[nodiscard]] double smooth_expected_affected_rows(int n, int k);

}  // namespace meshroute::analysis
