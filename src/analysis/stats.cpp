#include "analysis/stats.hpp"

// Header-only; this translation unit anchors the library target.
