// Lightweight statistics for the experiment harness: Welford accumulation
// and binomial proportions with normal-approximation confidence intervals.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace meshroute::analysis {

/// Streaming mean/variance accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
  }

  /// Combine with another accumulator (Chan's parallel Welford update).
  /// Merging partials in a fixed order is deterministic, which is what lets
  /// the sweep engine reduce per-cell results identically for any thread
  /// count.
  void merge(const Accumulator& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
  }

  [[nodiscard]] std::int64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Half-width of the ~95% normal-approximation confidence interval of the
  /// mean; 0 with fewer than two samples.
  [[nodiscard]] double ci95_half_width() const noexcept {
    return count_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
  }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Success counter for percentages (the paper's y-axes).
class Proportion {
 public:
  void add(bool success) noexcept {
    ++trials_;
    if (success) ++successes_;
  }

  /// Combine with another proportion (exact; order-independent).
  void merge(const Proportion& other) noexcept {
    trials_ += other.trials_;
    successes_ += other.successes_;
  }

  [[nodiscard]] std::int64_t trials() const noexcept { return trials_; }
  [[nodiscard]] std::int64_t successes() const noexcept { return successes_; }

  [[nodiscard]] double value() const {
    if (trials_ == 0) throw std::logic_error("Proportion::value with zero trials");
    return static_cast<double>(successes_) / static_cast<double>(trials_);
  }

  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_half_width() const {
    if (trials_ == 0) return 0.0;
    const double p = static_cast<double>(successes_) / static_cast<double>(trials_);
    return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(trials_));
  }

 private:
  std::int64_t trials_ = 0;
  std::int64_t successes_ = 0;
};

}  // namespace meshroute::analysis
