// Quickstart: the five-minute tour of the library.
//
//   1. Build a mesh and inject faults.
//   2. Inspect the derived fault models (faulty blocks, MCCs).
//   3. Read a node's extended safety level.
//   4. Ask the sufficient conditions whether minimal routing is guaranteed.
//   5. Route a packet with Wu's protocol and print the walk.
//
// Run:  ./build/examples/quickstart
#include <iostream>
#include <string>

#include "core/fault_tolerant_mesh.hpp"
#include "route/path.hpp"

using namespace meshroute;

namespace {

/// ASCII rendering: '#' faulty, 'o' disabled (block), '*' path, '.' free.
void render(const FaultTolerantMesh& ftm, const route::Path& path) {
  Grid<char> canvas(ftm.mesh().width(), ftm.mesh().height(), '.');
  ftm.mesh().for_each_node([&](Coord c) {
    if (ftm.faults().contains(c)) {
      canvas[c] = '#';
    } else if (ftm.blocks().is_block_node(c)) {
      canvas[c] = 'o';
    }
  });
  for (const Coord c : path.hops) canvas[c] = '*';
  if (!path.hops.empty()) {
    canvas[path.source()] = 'S';
    canvas[path.destination()] = 'D';
  }
  // Print with y growing upward, as in the paper's figures.
  for (Dist y = ftm.mesh().height() - 1; y >= 0; --y) {
    std::string line;
    for (Dist x = 0; x < ftm.mesh().width(); ++x) line += canvas[{x, y}];
    std::cout << "  " << line << "\n";
  }
}

}  // namespace

int main() {
  // 1. A 20x20 mesh with a cluster of faults forming one block, plus a
  //    stray fault.
  FaultTolerantMesh ftm(20, 20);
  const std::vector<Coord> faults{{8, 8}, {8, 9}, {9, 9}, {10, 9}, {7, 10}, {9, 11}, {14, 4}};
  ftm.inject_faults(faults);

  // 2. Fault models.
  std::cout << "faulty blocks (Definition 1):\n";
  for (const auto& b : ftm.blocks().blocks()) {
    std::cout << "  " << b.rect.to_string() << "  faulty=" << b.faulty_count
              << " disabled=" << b.disabled_count << "\n";
  }
  std::cout << "type-one MCCs (Definition 2): " << ftm.mcc().type_one.components().size()
            << " components, " << ftm.mcc().type_one.total_disabled()
            << " disabled nodes (vs " << ftm.blocks().total_disabled()
            << " under the block model)\n\n";

  // 3. Extended safety level of the source.
  const Coord src{2, 2};
  const Coord dst{16, 17};
  const auto& level = ftm.safety(FaultModel::FaultyBlock, Quadrant::I)[src];
  const auto show = [](Dist v) {
    return is_infinite(v) ? std::string("inf") : std::to_string(v);
  };
  std::cout << "extended safety level of " << to_string(src) << ": (E=" << show(level.e)
            << ", S=" << show(level.s) << ", W=" << show(level.w) << ", N=" << show(level.n)
            << ")\n";

  // 4. Decision at the source (Definition 3 + extensions).
  const auto decision = ftm.decide(src, dst, FaultModel::FaultyBlock);
  std::cout << "decision for " << to_string(src) << " -> " << to_string(dst) << ": "
            << (decision == cond::Decision::Minimal
                    ? "minimal path guaranteed"
                    : decision == cond::Decision::SubMinimal ? "sub-minimal path guaranteed"
                                                             : "unknown")
            << "\n";
  std::cout << "ground truth: minimal path "
            << (ftm.minimal_path_exists(src, dst) ? "exists" : "does not exist") << "\n\n";

  // 5. Route with node-local boundary information only.
  const auto result = ftm.route(src, dst);
  if (result.delivered()) {
    std::cout << "routed in " << result.path.length() << " hops (Manhattan distance "
              << manhattan(src, dst) << ", minimal="
              << (route::path_is_minimal(result.path) ? "yes" : "no") << "):\n";
    render(ftm, result.path);
  } else {
    std::cout << "routing failed\n";
  }
  return 0;
}
