// Online reconfiguration: the paper's information model is incremental —
// "when a disturbance occurs, only those affected nodes update their
// information". This example injects faults one at a time into a live
// 64 x 64 mesh, reports how much work each disturbance costs (nodes
// relabeled, safety-grid lines re-swept — versus the 64 x 2 = 128 lines a
// full rebuild would sweep), and shows a fixed source/destination pair's
// routability decision degrade and recover routes as the fault pattern
// grows around it.
//
// Run:  ./build/examples/online_reconfiguration
#include <iostream>

#include "cond/conditions.hpp"
#include "cond/wang.hpp"
#include "dynamic/dynamic_state.hpp"
#include "experiment/table.hpp"

using namespace meshroute;

int main() {
  constexpr Dist kSide = 64;
  const Mesh2D mesh = Mesh2D::square(kSide);
  dynamic::DynamicMeshState state(mesh);
  Rng rng(64);

  const Coord src{8, 8};
  const Coord dst{55, 52};

  experiment::Table table({"event", "relabeled", "absorbed", "rows_swept", "cols_swept",
                           "blocks", "safe", "minimal_exists"});
  std::int64_t total_lines = 0;
  int events = 0;
  for (int i = 0; i < 220; ++i) {
    const Coord f{static_cast<Dist>(rng.uniform(0, kSide - 1)),
                  static_cast<Dist>(rng.uniform(0, kSide - 1))};
    if (f == src || f == dst) continue;
    const auto stats = state.inject_fault(f);
    total_lines += stats.rows_resweeped + stats.cols_resweeped;
    ++events;

    if (events % 20 != 0) continue;
    const cond::RoutingProblem p{&mesh, &state.obstacle_mask(), &state.safety(), src, dst};
    table.add_row({static_cast<double>(events), static_cast<double>(stats.relabeled_nodes),
                   static_cast<double>(stats.absorbed_blocks),
                   static_cast<double>(stats.rows_resweeped),
                   static_cast<double>(stats.cols_resweeped),
                   static_cast<double>(state.blocks().size()),
                   cond::source_safe(p) ? 1.0 : 0.0,
                   cond::monotone_path_exists(mesh, state.obstacle_mask(), src, dst) ? 1.0
                                                                                     : 0.0});
  }

  table.print(std::cout, "Online reconfiguration on a 64x64 mesh (every 20th event shown)");
  std::cout << "\nTotal safety-grid lines re-swept over " << events << " disturbances: "
            << total_lines << " — a full rebuild per disturbance would have swept "
            << static_cast<std::int64_t>(events) * 2 * kSide << " lines ("
            << (static_cast<double>(events) * 2 * kSide) / static_cast<double>(total_lines)
            << "x more).\n"
            << "The incremental state is asserted equal to a from-scratch rebuild after\n"
            << "every injection in the test-suite (tests/test_dynamic.cpp).\n";
  return 0;
}
