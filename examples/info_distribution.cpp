// The information plane, run distributedly: this example executes the
// paper's three distribution protocols on the message-passing substrate and
// reports their convergence costs (rounds, link traversals), validating
// Section 4's claim that the process "is simple and converges quickly".
//
// It also quantifies the memory thriftiness of limited global information:
// how many (node, block) records the boundary model deposits versus the
// O(n^2) per node a global fault map would need, and how many nodes sit on
// affected rows/columns (the only ones exchanging safety levels).
//
// Run:  ./build/examples/info_distribution
#include <iostream>

#include "experiment/table.hpp"
#include "fault/block_model.hpp"
#include "fault/fault_set.hpp"
#include "info/boundary.hpp"
#include "info/regions.hpp"
#include "info/safety_level.hpp"
#include "simsub/protocols.hpp"

using namespace meshroute;

int main() {
  constexpr Dist kSide = 100;
  const Mesh2D mesh = Mesh2D::square(kSide);
  Rng rng(7);

  experiment::Table table({"faults", "safety_rounds", "safety_msgs", "boundary_rounds",
                           "boundary_msgs", "bcast_rounds", "bcast_msgs", "info_entries",
                           "affected_rows_pct"});

  for (const std::size_t k : {5u, 20u, 50u, 100u, 150u}) {
    Rng trial_rng = rng.fork();
    const auto faults = fault::uniform_random_faults(mesh, k, trial_rng);
    const auto blocks = fault::build_faulty_blocks(mesh, faults);
    const Grid<bool> mask = info::obstacle_mask(mesh, blocks);

    // 1. FORMATION-EXTENDED-SAFETY-LEVEL-INFORMATION, distributed.
    const auto safety = simsub::distributed_safety_levels(mesh, mask);
    // Sanity: equals the centralized sweep.
    const auto central = info::compute_safety_levels(mesh, mask);
    std::size_t mismatches = 0;
    mesh.for_each_node([&](Coord c) {
      if (mask[c]) return;
      for (const Direction d : kAllDirections) {
        const Dist a = safety.levels[c].get(d);
        const Dist b = central[c].get(d);
        if (is_infinite(a) != is_infinite(b) || (!is_infinite(a) && a != b)) ++mismatches;
      }
    });
    if (mismatches != 0) {
      std::cerr << "distributed/centralized mismatch: " << mismatches << "\n";
      return 1;
    }

    // 2. Boundary-line distribution.
    const auto boundary = simsub::distributed_boundary_info(mesh, blocks);
    std::size_t entries = 0;
    mesh.for_each_node([&](Coord c) { entries += boundary.known[c].size(); });

    // 3. One pivot broadcast from the mesh center.
    const auto bcast = simsub::broadcast_from(mesh, mask, mesh.center());

    const double affected_pct =
        100.0 * static_cast<double>(info::affected_rows(mesh, mask).size()) / kSide;

    table.add_row({static_cast<double>(k), static_cast<double>(safety.stats.rounds),
                   static_cast<double>(safety.stats.messages),
                   static_cast<double>(boundary.stats.rounds),
                   static_cast<double>(boundary.stats.messages),
                   static_cast<double>(bcast.stats.rounds),
                   static_cast<double>(bcast.stats.messages), static_cast<double>(entries),
                   affected_pct});
  }

  table.print(std::cout, "Distributed information protocols on a 100x100 mesh");
  std::cout << "\nEvery distributed run was checked against the centralized computation.\n"
            << "A global fault map would store O(n^2) = " << kSide * kSide
            << " entries PER NODE; the boundary model deposits only the entries above\n"
            << "across the whole mesh, and only nodes on affected rows/columns exchange\n"
            << "safety levels at all.\n";
  return 0;
}
