// Figure gallery: regenerates the paper's illustrative figures as PPM images
// from a live configuration — Figure 1's faulty block and both MCC
// labelings, a Wu-protocol route around blocks (the Figure 2/3 geometry),
// and an extended-safety-level heatmap. Images land in ./figures/.
//
// Run:  ./build/examples/figure_gallery
#include <filesystem>
#include <fstream>
#include <iostream>

#include "fault/fault_set.hpp"
#include "core/fault_tolerant_mesh.hpp"
#include "render/render.hpp"

using namespace meshroute;

namespace {

void save(const render::Image& img, const std::string& name, int scale) {
  std::filesystem::create_directories("figures");
  const std::string path = "figures/" + name + ".ppm";
  std::ofstream out(path, std::ios::binary);
  img.scaled(scale).write_ppm(out);
  std::cout << "  wrote " << path << "\n";
}

}  // namespace

int main() {
  // Figure 1: the paper's eight-fault example.
  {
    const Mesh2D mesh(10, 10);
    fault::FaultSet fs(mesh);
    for (const Coord f : {Coord{3, 3}, Coord{3, 4}, Coord{4, 4}, Coord{5, 4}, Coord{6, 4},
                          Coord{2, 5}, Coord{5, 5}, Coord{3, 6}}) {
      fs.add(f);
    }
    const auto blocks = fault::build_faulty_blocks(mesh, fs);
    const auto mcc = fault::build_mcc_model(mesh, fs);
    std::cout << "Figure 1 (a)-(c):\n";
    save(render::render_blocks(mesh, fs, blocks), "fig1a_faulty_block", 24);
    save(render::render_mcc(mesh, mcc.type_one), "fig1b_type_one_mcc", 24);
    save(render::render_mcc(mesh, mcc.type_two), "fig1c_type_two_mcc", 24);
  }

  // A routed packet skirting two blocks (the composite-barrier geometry).
  {
    FaultTolerantMesh ftm(24, 24);
    for (Dist x = 5; x <= 8; ++x)
      for (Dist y = 5; y <= 7; ++y) ftm.inject_fault({x, y});
    for (Dist x = 10; x <= 13; ++x)
      for (Dist y = 12; y <= 15; ++y) ftm.inject_fault({x, y});
    const auto r = ftm.route({2, 2}, {12, 21});
    std::cout << "Wu-protocol route (" << (r.delivered() ? "delivered" : "failed")
              << ", length " << r.path.length() << "):\n";
    render::Image img =
        render::render_blocks(ftm.mesh(), ftm.faults(), ftm.blocks());
    render::overlay_path(img, r.path);
    save(img, "route_around_blocks", 12);
    std::cout << render::ascii_map(ftm.mesh(), ftm.faults(), ftm.blocks(), &r.path);
  }

  // Safety-level heatmap (E direction) for a random configuration.
  {
    FaultTolerantMesh ftm(64, 64);
    Rng rng(11);
    const auto fs = fault::uniform_random_faults(ftm.mesh(), 60, rng);
    ftm.inject_faults(fs.faults());
    const auto& safety = ftm.safety(FaultModel::FaultyBlock, Quadrant::I);
    std::cout << "Safety heatmap:\n";
    save(render::render_safety(ftm.mesh(), safety, Direction::East), "safety_east", 6);
  }

  std::cout << "Done. View the .ppm files with any image viewer.\n";
  return 0;
}
