// A network-on-chip style workload: many packets between random endpoints on
// a 64 x 64 mesh while faults accumulate. For each fault level we compare
//
//   * decision-gated routing (the paper's pipeline: evaluate extension 1 at
//     the source, then route with node-local boundary information, two-phase
//     when the certificate says so), and
//   * global-information routing (every node knows every block),
//
// reporting delivery rate, average path stretch over the Manhattan distance,
// and how often the source-side decision procedure already knew the outcome.
//
// Run:  ./build/examples/noc_packet_delivery
#include <iomanip>
#include <iostream>

#include "analysis/stats.hpp"
#include "cond/conditions.hpp"
#include "core/fault_tolerant_mesh.hpp"
#include "experiment/table.hpp"
#include "fault/fault_set.hpp"
#include "route/path.hpp"
#include "route/router.hpp"

using namespace meshroute;

int main() {
  constexpr Dist kSide = 64;
  constexpr int kPackets = 2000;
  Rng rng(2002);

  experiment::Table table({"faults", "decided_pct", "delivered_pct", "recovered_pct",
                           "minimal_pct", "avg_stretch", "global_delivered_pct",
                           "xy_delivered_pct"});

  FaultTolerantMesh ftm(kSide, kSide);
  for (const std::size_t faults : {0u, 8u, 16u, 32u, 64u, 96u}) {
    ftm.clear_faults();
    Rng fault_rng = rng.fork();
    const auto fs = fault::uniform_random_faults(ftm.mesh(), faults, fault_rng);
    ftm.inject_faults(fs.faults());

    analysis::Proportion decided;
    analysis::Proportion delivered;
    analysis::Proportion recovered_total;
    analysis::Proportion minimal;
    analysis::Proportion global_delivered;
    analysis::Proportion xy_delivered;
    analysis::Accumulator stretch;

    const auto& mask = ftm.obstacles(FaultModel::FaultyBlock, Quadrant::I);
    Rng traffic = rng.fork();
    for (int pkt = 0; pkt < kPackets; ++pkt) {
      const Coord s{static_cast<Dist>(traffic.uniform(0, kSide - 1)),
                    static_cast<Dist>(traffic.uniform(0, kSide - 1))};
      const Coord d{static_cast<Dist>(traffic.uniform(0, kSide - 1)),
                    static_cast<Dist>(traffic.uniform(0, kSide - 1))};
      if (s == d || mask[s] || mask[d]) continue;

      // Source-side decision (extension 1 gives a via-node certificate).
      const cond::RoutingProblem problem = ftm.problem(s, d, FaultModel::FaultyBlock);
      Coord via = s;
      const cond::Decision dec = cond::extension1(problem, &via);
      decided.add(dec != cond::Decision::Unknown);

      route::RouteResult r = dec == cond::Decision::Unknown || via == s
                                 ? ftm.route(s, d, route::InfoPolicy::BoundaryInfo, &traffic)
                                 : ftm.route_via(s, via, d, route::InfoPolicy::BoundaryInfo,
                                                 &traffic);
      delivered.add(r.delivered());
      // Non-minimal recovery: packets the minimal machinery strands fall
      // back to shortest-around-blocks routing.
      bool recovered = r.delivered();
      if (!recovered) {
        const auto bfs = route::route_shortest_bfs(ftm.mesh(), mask, s, d);
        recovered = bfs.delivered();
        if (recovered) {
          stretch.add(static_cast<double>(bfs.path.length()) /
                      static_cast<double>(std::max<Dist>(1, manhattan(s, d))));
        }
      }
      recovered_total.add(recovered);
      if (r.delivered()) {
        minimal.add(route::path_is_minimal(r.path));
        stretch.add(static_cast<double>(r.path.length()) /
                    static_cast<double>(std::max<Dist>(1, manhattan(s, d))));
      }
      global_delivered.add(
          ftm.route(s, d, route::InfoPolicy::GlobalInfo, &traffic).delivered());
      xy_delivered.add(route::route_dimension_order(ftm.mesh(), mask, s, d).delivered());
    }

    table.add_row({static_cast<double>(faults), 100.0 * decided.value(),
                   100.0 * delivered.value(), 100.0 * recovered_total.value(),
                   100.0 * minimal.value(), stretch.mean(),
                   100.0 * global_delivered.value(), 100.0 * xy_delivered.value()});
  }

  table.print(std::cout, "NoC packet delivery on a 64x64 mesh, " + std::to_string(kPackets) +
                             " packets per fault level");
  std::cout << "\nNotes: 'decided' counts sources where extension 1 already certified the\n"
               "outcome; 'recovered' adds shortest-around-blocks fallback for stranded\n"
               "packets; stretch is path length over Manhattan distance (1.0 = minimal).\n"
               "Global-information delivery is the minimal-routing upper bound, and the\n"
               "dimension-order (XY) column is the classic fault-intolerant baseline the\n"
               "faulty-block literature improves on.\n";
  return 0;
}
