// Fault-model comparison on the paper's own running example (Figure 1): the
// eight faults that form the faulty block [2:6, 3:6], its type-one and
// type-two MCC refinements, the per-node dual status pairs the paper lists,
// and a routing instance where the MCC model certifies a minimal path that
// the coarser block model cannot.
//
// Run:  ./build/examples/mcc_comparison
#include <iostream>
#include <string>

#include "cond/conditions.hpp"
#include "fault/block_model.hpp"
#include "fault/fault_set.hpp"
#include "fault/mcc_model.hpp"
#include "info/safety_level.hpp"
#include "mesh/mesh2d.hpp"

using namespace meshroute;

namespace {

void render_block(const Mesh2D& mesh, const fault::FaultSet& faults,
                  const fault::BlockSet& blocks) {
  for (Dist y = mesh.height() - 1; y >= 0; --y) {
    std::string line;
    for (Dist x = 0; x < mesh.width(); ++x) {
      const Coord c{x, y};
      line += faults.contains(c) ? '#' : blocks.is_block_node(c) ? 'o' : '.';
    }
    std::cout << "  " << line << "\n";
  }
}

void render_mcc(const Mesh2D& mesh, const fault::MccSet& mcc) {
  for (Dist y = mesh.height() - 1; y >= 0; --y) {
    std::string line;
    for (Dist x = 0; x < mesh.width(); ++x) {
      const auto s = mcc.status({x, y});
      char ch = '.';
      if (s & fault::mcc_status::kFaulty) {
        ch = '#';
      } else if ((s & fault::mcc_status::kUseless) && (s & fault::mcc_status::kCantReach)) {
        ch = 'b';  // both
      } else if (s & fault::mcc_status::kUseless) {
        ch = 'u';
      } else if (s & fault::mcc_status::kCantReach) {
        ch = 'c';
      }
      line += ch;
    }
    std::cout << "  " << line << "\n";
  }
}

std::string status_name(const fault::MccSet& mcc, Coord c) {
  return mcc.is_mcc_node(c) ? "disabled" : "fault-free";
}

}  // namespace

int main() {
  const Mesh2D mesh(10, 10);
  fault::FaultSet faults(mesh);
  // Figure 1 (a)'s eight faults.
  for (const Coord f : {Coord{3, 3}, Coord{3, 4}, Coord{4, 4}, Coord{5, 4}, Coord{6, 4},
                        Coord{2, 5}, Coord{5, 5}, Coord{3, 6}}) {
    faults.add(f);
  }

  const auto blocks = fault::build_faulty_blocks(mesh, faults);
  const auto mcc = fault::build_mcc_model(mesh, faults);

  std::cout << "Figure 1 (a) — faulty block (" << blocks.blocks()[0].rect.to_string()
            << ", # = faulty, o = disabled):\n";
  render_block(mesh, faults, blocks);

  std::cout << "\nFigure 1 (b) — type-one MCC (quadrant I/III; u = useless, c = can't-reach, "
               "b = both):\n";
  render_mcc(mesh, mcc.type_one);

  std::cout << "\nFigure 1 (c) — type-two MCC (quadrant II/IV):\n";
  render_mcc(mesh, mcc.type_two);

  std::cout << "\nDual status (status1, status2) of the paper's sample nodes:\n";
  for (const Coord c : {Coord{4, 3}, Coord{2, 6}, Coord{4, 5}, Coord{2, 3}}) {
    std::cout << "  " << to_string(c) << ": (" << status_name(mcc.type_one, c) << ", "
              << status_name(mcc.type_two, c) << ")\n";
  }
  std::cout << "  note: the paper lists (4,3) as (fault-free, fault-free), but its north\n"
               "  (4,4) and west (3,3) neighbors are both faulty, so Definition 2's\n"
               "  quadrant-II mirror labels it useless — we follow the definition.\n";

  std::cout << "\ndisabled-node counts: block model " << blocks.total_disabled()
            << ", type-one MCC " << mcc.type_one.total_disabled() << ", type-two MCC "
            << mcc.type_two.total_disabled() << "\n";

  // A source/destination pair where only the MCC refinement certifies.
  const Grid<bool> fb_mask = info::obstacle_mask(mesh, blocks);
  const Grid<bool> mcc_mask = info::obstacle_mask(mesh, mcc.type_one);
  const auto fb_safety = info::compute_safety_levels(mesh, fb_mask);
  const auto mcc_safety = info::compute_safety_levels(mesh, mcc_mask);

  int fb_only = 0;
  int mcc_only = 0;
  int both = 0;
  mesh.for_each_node([&](Coord s) {
    mesh.for_each_node([&](Coord d) {
      if (s == d || fb_mask[s] || fb_mask[d] || mcc_mask[s] || mcc_mask[d]) return;
      if (quadrant_of(s, d) != Quadrant::I) return;
      const cond::RoutingProblem pf{&mesh, &fb_mask, &fb_safety, s, d};
      const cond::RoutingProblem pm{&mesh, &mcc_mask, &mcc_safety, s, d};
      const bool f = cond::source_safe(pf);
      const bool m = cond::source_safe(pm);
      fb_only += f && !m;
      mcc_only += m && !f;
      both += f && m;
    });
  });
  std::cout << "\nsafe (s, d) pairs in quadrant-I orientation: both models " << both
            << ", MCC only " << mcc_only << ", block only " << fb_only
            << "  (the refinement only ever adds certificates)\n";
  return 0;
}
